//! The pass manager: techniques as [`Pass`]es registered in a [`Pipeline`].
//!
//! The paper's transforms were gcc backend passes sharing one dataflow
//! substrate; this module gives the reproduction the same shape. Each
//! technique is a [`Pass`] over a [`Module`], run by a [`Pipeline`] that
//! owns a shared [`AnalysisCache`] (per-function, lazily-computed,
//! generation-stamped handles for `Cfg`/`Liveness`/`KnownBits`/`Ranges`/
//! `LoopInfo`). A pass that mutates a function reports it by invalidating
//! that function's cache entry; analysis-only passes leave the cache warm
//! for the passes behind them.
//!
//! The hybrids are declarative compositions of the base passes instead of
//! hand-fused code paths:
//!
//! * TRUMP/MASK = `[TrumpApplyPass, MaskPass { skip_trump }]` — TRUMP runs
//!   first and records its per-function protected sets in the [`PassCtx`];
//!   MASK reads them and enforces invariants only on what TRUMP left
//!   uncovered (§6.2).
//! * TRUMP/SWIFT-R = `[TrumpPartitionPass, TrumpSwiftRFusePass]` — an
//!   analysis-only pass computes the hybrid partition (which values carry
//!   AN shadows, which carry SWIFT-R copies), then the rewrite pass walks
//!   each function once, emitting the Figure 7 fuse at every
//!   SWIFT-R→TRUMP transition.
//!
//! A pipeline can verify the module between passes ([`Pipeline::verified`])
//! and reports per-pass instrumentation — instructions added, checks/votes/
//! encodes/fuses/masks emitted — plus the cache's hit/miss counters in a
//! [`PipelineReport`].
//!
//! ```
//! use sor_core::{Pipeline, Technique, TransformConfig};
//! use sor_ir::{ModuleBuilder, Operand, Width};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let mut f = mb.function("main");
//! let x = f.movi(40);
//! let y = f.add(Width::W64, x, 2i64);
//! f.emit(Operand::reg(y));
//! f.ret(&[]);
//! let id = f.finish();
//! let module = mb.finish(id);
//!
//! let out = Pipeline::for_technique(Technique::SwiftR)
//!     .verified()
//!     .run(&module, &TransformConfig::default())
//!     .unwrap();
//! assert!(out.module.inst_count() > module.inst_count());
//! assert!(out.report.passes[0].rewrites.votes > 0);
//! ```

use crate::cfc::CfcPass;
use crate::config::TransformConfig;
use crate::hybrid::rewrite_hybrid_func;
use crate::mask::mask_func;
use crate::nmr::{rewrite_nmr_func, NmrMode};
use crate::rewrite::RewriteStats;
use crate::technique::Technique;
use crate::trump::{rewrite_trump_func, trump_protected_set_in, TrumpFuncInfo};
use sor_analysis::{AnalysisCache, CacheStats};
use sor_ir::{verify, Module, VerifyError, Vreg};
use std::collections::HashSet;
use std::fmt;

/// Shared state threaded through a pipeline run: the transform
/// configuration, the analysis cache, and the between-pass facts the
/// declarative hybrids hand from one pass to the next.
pub struct PassCtx<'a> {
    /// Check-placement policy for every pass in the run.
    pub config: &'a TransformConfig,
    /// The shared per-function analysis store.
    pub cache: AnalysisCache,
    /// TRUMP's per-function protection info, recorded by `TrumpApplyPass`
    /// for a downstream `MaskPass { skip_trump }`.
    pub(crate) trump_info: Option<Vec<TrumpFuncInfo>>,
    /// The hybrid partition (TRUMP side per function), recorded by
    /// `TrumpPartitionPass` for `TrumpSwiftRFusePass`.
    pub(crate) hybrid_t: Option<Vec<HashSet<Vreg>>>,
}

impl<'a> PassCtx<'a> {
    /// A fresh context for one pipeline run over `module`.
    pub fn new(config: &'a TransformConfig, module: &Module) -> Self {
        PassCtx {
            config,
            cache: AnalysisCache::for_module(module),
            trump_info: None,
            hybrid_t: None,
        }
    }
}

/// What one pass did to the module.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PassStats {
    /// The pass's [`Pass::name`].
    pub pass: &'static str,
    /// Whether the pass changed any function (and thus invalidated cache
    /// entries).
    pub mutated: bool,
    /// Static instruction count before the pass.
    pub insts_before: usize,
    /// Static instruction count after the pass.
    pub insts_after: usize,
    /// Checks/votes/encodes/fuses/masks the pass emitted.
    pub rewrites: RewriteStats,
}

impl PassStats {
    /// Instructions the pass added.
    pub fn added(&self) -> usize {
        self.insts_after.saturating_sub(self.insts_before)
    }
}

/// One step of a [`Pipeline`].
pub trait Pass {
    /// Stable short name, used in reports and verification errors.
    fn name(&self) -> &'static str;
    /// Runs the pass over `module`. The pass must call
    /// `ctx.cache.invalidate(fi)` for every function it mutated — the
    /// cache trusts the pass's report and serves stale handles otherwise.
    fn run(&self, module: &mut Module, ctx: &mut PassCtx<'_>) -> PassStats;
}

/// Applies pure TRUMP (§4.2) and records the per-function protection info
/// in the context for a downstream [`MaskPass`].
pub struct TrumpApplyPass;

impl Pass for TrumpApplyPass {
    fn name(&self) -> &'static str {
        "trump"
    }

    fn run(&self, module: &mut Module, ctx: &mut PassCtx<'_>) -> PassStats {
        let mut stats = PassStats {
            pass: self.name(),
            insts_before: module.inst_count(),
            ..Default::default()
        };
        let mut infos = Vec::with_capacity(module.funcs.len());
        for fi in 0..module.funcs.len() {
            let ranges = ctx.cache.ranges(fi, &module.funcs[fi]);
            let t = trump_protected_set_in(&module.funcs[fi], false, &ranges);
            infos.push(TrumpFuncInfo {
                protected: t.clone(),
                orig_int_vregs: module.funcs[fi].int_vreg_count(),
            });
            let (rewritten, rw) = rewrite_trump_func(&module.funcs[fi], ctx.config, t);
            stats.rewrites.absorb(rw);
            if rewritten != module.funcs[fi] {
                module.funcs[fi] = rewritten;
                ctx.cache.invalidate(fi);
                stats.mutated = true;
            }
        }
        ctx.trump_info = Some(infos);
        stats.insts_after = module.inst_count();
        stats
    }
}

/// Applies MASK (§5). With `skip_trump`, reads the [`TrumpApplyPass`]
/// protection info from the context and masks only what TRUMP left
/// unprotected — the TRUMP/MASK composition.
pub struct MaskPass {
    /// Skip TRUMP-protected values and transform-introduced registers.
    pub skip_trump: bool,
}

impl Pass for MaskPass {
    fn name(&self) -> &'static str {
        "mask"
    }

    fn run(&self, module: &mut Module, ctx: &mut PassCtx<'_>) -> PassStats {
        let mut stats = PassStats {
            pass: self.name(),
            insts_before: module.inst_count(),
            ..Default::default()
        };
        let skip = if self.skip_trump {
            Some(
                ctx.trump_info
                    .take()
                    .expect("MaskPass{skip_trump} needs a TrumpApplyPass before it"),
            )
        } else {
            None
        };
        for fi in 0..module.funcs.len() {
            let kb = ctx.cache.known_bits(fi, &module.funcs[fi]);
            let loops = ctx.cache.loops(fi, &module.funcs[fi]);
            let live = ctx.cache.liveness(fi, &module.funcs[fi]);
            let inserted = mask_func(
                &mut module.funcs[fi],
                ctx.config,
                skip.as_ref().map(|s| &s[fi]),
                &kb,
                &loops,
                &live,
            );
            if inserted > 0 {
                ctx.cache.invalidate(fi);
                stats.mutated = true;
                stats.rewrites.masks += inserted;
            }
        }
        stats.insts_after = module.inst_count();
        stats
    }
}

/// Applies SWIFT (detect) or SWIFT-R (vote) duplication (§2.2 / §3).
pub struct NmrApplyPass {
    mode: NmrMode,
}

impl NmrApplyPass {
    /// SWIFT: one shadow copy, detection traps.
    pub fn detect() -> Self {
        NmrApplyPass {
            mode: NmrMode::Detect,
        }
    }

    /// SWIFT-R: two shadow copies, majority votes.
    pub fn vote() -> Self {
        NmrApplyPass {
            mode: NmrMode::Vote,
        }
    }
}

impl Pass for NmrApplyPass {
    fn name(&self) -> &'static str {
        match self.mode {
            NmrMode::Detect => "swift",
            NmrMode::Vote => "swift-r",
        }
    }

    fn run(&self, module: &mut Module, ctx: &mut PassCtx<'_>) -> PassStats {
        let mut stats = PassStats {
            pass: self.name(),
            insts_before: module.inst_count(),
            ..Default::default()
        };
        for fi in 0..module.funcs.len() {
            let (rewritten, rw) = rewrite_nmr_func(&module.funcs[fi], ctx.config, self.mode);
            stats.rewrites.absorb(rw);
            if rewritten != module.funcs[fi] {
                module.funcs[fi] = rewritten;
                ctx.cache.invalidate(fi);
                stats.mutated = true;
            }
        }
        stats.insts_after = module.inst_count();
        stats
    }
}

/// Analysis-only pass: computes the TRUMP/SWIFT-R hybrid partition (§6.1)
/// from the cached range analysis and records it in the context. Mutates
/// nothing, so the cache stays warm for the fuse pass.
pub struct TrumpPartitionPass;

impl Pass for TrumpPartitionPass {
    fn name(&self) -> &'static str {
        "trump-partition"
    }

    fn run(&self, module: &mut Module, ctx: &mut PassCtx<'_>) -> PassStats {
        let n = module.inst_count();
        let mut parts = Vec::with_capacity(module.funcs.len());
        for fi in 0..module.funcs.len() {
            let ranges = ctx.cache.ranges(fi, &module.funcs[fi]);
            parts.push(trump_protected_set_in(&module.funcs[fi], true, &ranges));
        }
        ctx.hybrid_t = Some(parts);
        PassStats {
            pass: self.name(),
            mutated: false,
            insts_before: n,
            insts_after: n,
            rewrites: RewriteStats::default(),
        }
    }
}

/// The TRUMP/SWIFT-R rewrite: one walk per function applying TRUMP on the
/// partition's T side, SWIFT-R elsewhere, with the Figure 7 fuse at every
/// transition. Needs a [`TrumpPartitionPass`] before it.
pub struct TrumpSwiftRFusePass;

impl Pass for TrumpSwiftRFusePass {
    fn name(&self) -> &'static str {
        "trump-swift-r-fuse"
    }

    fn run(&self, module: &mut Module, ctx: &mut PassCtx<'_>) -> PassStats {
        let mut stats = PassStats {
            pass: self.name(),
            insts_before: module.inst_count(),
            ..Default::default()
        };
        let parts = ctx
            .hybrid_t
            .take()
            .expect("TrumpSwiftRFusePass needs a TrumpPartitionPass before it");
        for (fi, t) in parts.into_iter().enumerate() {
            let (rewritten, rw) = rewrite_hybrid_func(&module.funcs[fi], ctx.config, t);
            stats.rewrites.absorb(rw);
            if rewritten != module.funcs[fi] {
                module.funcs[fi] = rewritten;
                ctx.cache.invalidate(fi);
                stats.mutated = true;
            }
        }
        stats.insts_after = module.inst_count();
        stats
    }
}

/// Per-pass instrumentation plus the shared cache's counters for one
/// pipeline run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PipelineReport {
    /// One entry per pass, in run order.
    pub passes: Vec<PassStats>,
    /// Hit/miss/invalidation counters of the run's [`AnalysisCache`].
    pub cache: CacheStats,
}

impl PipelineReport {
    /// Total checks/votes/encodes/fuses/masks across every pass.
    pub fn totals(&self) -> RewriteStats {
        let mut t = RewriteStats::default();
        for p in &self.passes {
            t.absorb(p.rewrites);
        }
        t
    }
}

/// A transformed module plus the run's [`PipelineReport`].
#[derive(Debug)]
pub struct PipelineOutput {
    /// The module after every pass.
    pub module: Module,
    /// What each pass did.
    pub report: PipelineReport,
}

/// Between-pass verification failure: the named pass left the module in a
/// state `sor_ir::verify` rejects.
#[derive(Debug)]
pub struct PipelineError {
    /// The pass whose output failed verification.
    pub pass: &'static str,
    /// The verifier's complaint.
    pub source: VerifyError,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pass '{}' broke the module: {}", self.pass, self.source)
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// An ordered list of [`Pass`]es sharing one [`AnalysisCache`].
#[derive(Default)]
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
    verify_between: bool,
}

impl Pipeline {
    /// An empty pipeline (the NOFT baseline: running it clones the module).
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// The pipeline for one of the paper's techniques.
    pub fn for_technique(t: Technique) -> Self {
        let mut p = Pipeline::new();
        match t {
            Technique::Noft => {}
            Technique::Mask => p.push(MaskPass { skip_trump: false }),
            Technique::Trump => p.push(TrumpApplyPass),
            Technique::TrumpMask => {
                p.push(TrumpApplyPass);
                p.push(MaskPass { skip_trump: true });
            }
            Technique::TrumpSwiftR => {
                p.push(TrumpPartitionPass);
                p.push(TrumpSwiftRFusePass);
            }
            Technique::SwiftR => p.push(NmrApplyPass::vote()),
            Technique::Swift => p.push(NmrApplyPass::detect()),
            Technique::Cfcss => p.push(CfcPass::cfcss()),
            Technique::Ceda => p.push(CfcPass::ceda()),
            Technique::SwiftRCfcss => {
                p.push(NmrApplyPass::vote());
                p.push(CfcPass::cfcss());
            }
        }
        p
    }

    /// Appends a pass.
    pub fn push(&mut self, pass: impl Pass + 'static) {
        self.passes.push(Box::new(pass));
    }

    /// Enables IR verification after every pass; the first failure aborts
    /// the run with a [`PipelineError`] naming the offending pass.
    pub fn verified(mut self) -> Self {
        self.verify_between = true;
        self
    }

    /// The names of the registered passes, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass over a copy of `module`.
    pub fn run(
        &self,
        module: &Module,
        config: &TransformConfig,
    ) -> Result<PipelineOutput, PipelineError> {
        let mut out = module.clone();
        let mut ctx = PassCtx::new(config, module);
        let mut passes = Vec::with_capacity(self.passes.len());
        for pass in &self.passes {
            let stats = pass.run(&mut out, &mut ctx);
            if self.verify_between {
                verify(&out).map_err(|source| PipelineError {
                    pass: pass.name(),
                    source,
                })?;
            }
            passes.push(stats);
        }
        Ok(PipelineOutput {
            module: out,
            report: PipelineReport {
                passes,
                cache: ctx.cache.stats(),
            },
        })
    }
}

/// Runs `technique`'s pipeline without between-pass verification and
/// returns the transformed module — the implementation behind
/// [`Technique::apply_with`] and the `apply_*` free functions.
pub(crate) fn run_technique(
    technique: Technique,
    module: &Module,
    config: &TransformConfig,
) -> Module {
    Pipeline::for_technique(technique)
        .run(module, config)
        .expect("verification disabled; passes are infallible")
        .module
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_ir::{MemWidth, ModuleBuilder, Operand, Width};

    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.alloc_global_i32s("g", &[11, 22, 33]);
        let mut f = mb.function("main");
        let base = f.movi(g as i64);
        let x = f.load(MemWidth::B4, base, 0);
        let y = f.load(MemWidth::B4, base, 4);
        let s = f.add(Width::W64, x, y);
        let l = f.xor(Width::W64, s, 0x5Ai64);
        f.store(MemWidth::B4, base, 8, l);
        f.emit(Operand::reg(l));
        f.ret(&[]);
        let id = f.finish();
        mb.finish(id)
    }

    #[test]
    fn pipeline_output_matches_direct_apply() {
        // The pipeline is the implementation, but equality with the
        // Technique entry point must hold bit-for-bit: campaigns key their
        // determinism on it.
        let m = sample();
        for tech in Technique::ALL {
            let direct = tech.apply(&m);
            let piped = Pipeline::for_technique(tech)
                .verified()
                .run(&m, &TransformConfig::default())
                .unwrap_or_else(|e| panic!("{tech}: {e}"))
                .module;
            assert_eq!(direct, piped, "{tech}");
        }
    }

    #[test]
    fn noft_pipeline_is_identity() {
        let m = sample();
        let out = Pipeline::for_technique(Technique::Noft)
            .run(&m, &TransformConfig::default())
            .unwrap();
        assert_eq!(out.module, m);
        assert!(out.report.passes.is_empty());
    }

    #[test]
    fn reports_count_emitted_constructs() {
        let m = sample();
        let cfg = TransformConfig::default();

        let swiftr = Pipeline::for_technique(Technique::SwiftR)
            .run(&m, &cfg)
            .unwrap();
        let s = &swiftr.report.passes[0];
        assert_eq!(s.pass, "swift-r");
        assert!(s.mutated);
        assert!(s.rewrites.votes > 0);
        assert_eq!(s.rewrites.checks, 0);
        assert_eq!(s.added(), s.insts_after - s.insts_before);

        let swift = Pipeline::for_technique(Technique::Swift)
            .run(&m, &cfg)
            .unwrap();
        assert!(swift.report.passes[0].rewrites.checks > 0);
        assert_eq!(swift.report.passes[0].rewrites.votes, 0);

        let trump = Pipeline::for_technique(Technique::Trump)
            .run(&m, &cfg)
            .unwrap();
        let t = trump.report.totals();
        assert!(t.encodes > 0, "loads re-encode: {t:?}");

        let mask = Pipeline::for_technique(Technique::Mask)
            .run(&m, &cfg)
            .unwrap();
        assert_eq!(mask.report.totals().votes, 0);
    }

    #[test]
    fn hybrid_composition_shares_the_cache() {
        // TRUMP/MASK: the partitioning and masking of the *original*
        // functions reuse cached analyses; the mutation invalidations are
        // reported. The run must record at least one cache hit (the
        // liveness query reuses the cfg computed for loops).
        let m = sample();
        let out = Pipeline::for_technique(Technique::TrumpMask)
            .verified()
            .run(&m, &TransformConfig::default())
            .unwrap();
        assert_eq!(out.report.passes.len(), 2);
        assert!(out.report.cache.hits > 0, "{:?}", out.report.cache);
        assert!(out.report.cache.invalidations > 0);
    }

    #[test]
    fn partition_pass_is_analysis_only() {
        let m = sample();
        let out = Pipeline::for_technique(Technique::TrumpSwiftR)
            .verified()
            .run(&m, &TransformConfig::default())
            .unwrap();
        let part = &out.report.passes[0];
        assert_eq!(part.pass, "trump-partition");
        assert!(!part.mutated);
        assert_eq!(part.added(), 0);
        let fuse = &out.report.passes[1];
        assert!(fuse.mutated);
        assert!(fuse.rewrites.fuses > 0 || fuse.rewrites.votes > 0);
    }

    #[test]
    fn verification_catches_a_broken_pass() {
        struct BreakerPass;
        impl Pass for BreakerPass {
            fn name(&self) -> &'static str {
                "breaker"
            }
            fn run(&self, module: &mut Module, ctx: &mut PassCtx<'_>) -> PassStats {
                // Point a terminator at a nonexistent block.
                module.funcs[0].blocks[0].term =
                    sor_ir::Terminator::Jump(sor_ir::BlockId(u32::MAX));
                ctx.cache.invalidate(0);
                PassStats {
                    pass: "breaker",
                    mutated: true,
                    ..Default::default()
                }
            }
        }
        let m = sample();
        let mut p = Pipeline::new();
        p.push(BreakerPass);
        let err = p
            .verified()
            .run(&m, &TransformConfig::default())
            .unwrap_err();
        assert_eq!(err.pass, "breaker");
        assert!(err.to_string().contains("breaker"));
    }
}
