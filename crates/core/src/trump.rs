//! TRUMP: Triple Redundancy Using Multiplication Protection (paper §4).
//!
//! Instead of two extra copies, TRUMP keeps one AN-coded copy `xt = 3·x`
//! per protected value. AN-codes are arithmetic codes, so the shadow tracks
//! the original through add/sub/multiply-by-constant/shift-left at the cost
//! of one instruction per protected operation. A mismatch (`3·x != xt`)
//! identifies the corrupted side by divisibility: a single bit flip changes
//! a multiple of 3 into a non-multiple (since `2^k mod 3 != 0`), so
//! `xt % 3 == 0` means the original was hit (`x := xt / 3`), otherwise the
//! shadow was (`xt := 3·x`) — Figure 4's recovery sequence, emitted inline
//! on the rare path of every check.
//!
//! Applicability (§4.3): the compiler must prove `3·x` cannot overflow and
//! that the dependence chain only crosses AN-transparent operations. Both
//! checks come from `sor_analysis::Ranges`; chains rooted at bounded loads
//! (pointers, narrow data) and `assume` facts qualify, logical operations
//! and comparisons do not.

use crate::config::TransformConfig;
use crate::rewrite::{Rewriter, ShadowMap};
use sor_analysis::Ranges;
use sor_ir::{
    AluOp, CmpOp, Function, Inst, MemWidth, Module, Operand, ProbeEvent, ProtectionRole, RegClass,
    Terminator, Vreg, Width,
};
use std::collections::HashSet;

/// Per-function facts the hybrids and the coverage report need.
#[derive(Debug, Clone)]
pub(crate) struct TrumpFuncInfo {
    /// Original virtual registers protected by TRUMP.
    pub protected: HashSet<Vreg>,
    /// Integer vreg count of the *original* function (everything at or above
    /// this index in the transformed function is transform-introduced).
    pub orig_int_vregs: u32,
}

/// Computes the TRUMP-protectable set of a function.
///
/// In pure mode (`hybrid = false`) a value is protected only if its whole
/// chain is: operands of protected operations must themselves be protected.
/// In hybrid mode operands may instead be SWIFT-R-protected (the Figure 7
/// fuse converts two copies into one AN shadow), but a value consumed by a
/// SWIFT-R-duplicated operation is demoted — the paper's "one transition
/// per chain, SWIFT-R to TRUMP only" restriction (§6.1): converting TRUMP
/// redundancy back into two copies would require an expensive division.
pub fn trump_protected_set(func: &Function, hybrid: bool) -> HashSet<Vreg> {
    trump_protected_set_in(func, hybrid, &Ranges::new(func))
}

/// [`trump_protected_set`] against a precomputed range analysis — the form
/// the pipeline uses so a cached [`Ranges`] is shared between the pure and
/// hybrid fixpoints instead of being rebuilt per call.
pub(crate) fn trump_protected_set_in(
    func: &Function,
    hybrid: bool,
    ranges: &Ranges,
) -> HashSet<Vreg> {
    // Start from everything except parameters: the fixpoint only removes
    // values at their definitions, and parameters have none — yet their
    // range is unknown, so they can never carry an AN shadow.
    let mut t: HashSet<Vreg> = (0..func.int_vreg_count())
        .map(|i| Vreg::new(i, RegClass::Int))
        .filter(|v| !func.params.contains(v))
        .collect();
    loop {
        let mut changed = false;
        for block in &func.blocks {
            for inst in &block.insts {
                for d in inst.defs() {
                    if d.is_int() && t.contains(&d) && !def_capable(inst, d, ranges, &t, hybrid) {
                        t.remove(&d);
                        changed = true;
                    }
                }
                if hybrid && is_compute(inst) {
                    let demoted = inst.defs().iter().any(|d| d.is_int() && !t.contains(d));
                    if demoted {
                        for u in inst.uses() {
                            if u.is_int() && t.remove(&u) {
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            return t;
        }
    }
}

/// Whether `inst` is duplicated wholesale by SWIFT-R (and therefore needs
/// SWIFT-R shadows of its integer operands).
fn is_compute(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Alu { .. }
            | Inst::Cmp { .. }
            | Inst::Mov { .. }
            | Inst::Select { .. }
            | Inst::Assume { .. }
    )
}

fn reg_ok(o: &Operand, t: &HashSet<Vreg>, hybrid: bool) -> bool {
    match o {
        Operand::Imm(i) => *i >= 0 && (*i as u64) <= u64::MAX / 3,
        // Hybrid mode can fuse a SWIFT-R operand into an AN shadow; pure
        // TRUMP needs the operand's own shadow.
        Operand::Reg(r) => hybrid || t.contains(r),
    }
}

fn def_capable(inst: &Inst, dst: Vreg, ranges: &Ranges, t: &HashSet<Vreg>, hybrid: bool) -> bool {
    // The joined range of every definition of `dst` must keep 3·x in range.
    if !ranges.range(dst).an_encodable() {
        return false;
    }
    match inst {
        Inst::Mov { src, .. } => reg_ok(src, t, hybrid),
        Inst::Assume { .. } => true, // roots or fuses; range already checked
        Inst::Alu {
            op, width, a, b, ..
        } => {
            let ra = ranges.operand_range(*a);
            let rb = ranges.operand_range(*b);
            // The shadow is computed at 64 bits, so the original operation
            // must provably not wrap at its own width.
            let fits = |iv: Option<sor_analysis::Interval>| match iv {
                Some(iv) => iv.hi <= width.mask() && iv.an_encodable(),
                None => false,
            };
            match op {
                AluOp::Add => fits(ra.add(rb)) && reg_ok(a, t, hybrid) && reg_ok(b, t, hybrid),
                AluOp::Sub => fits(ra.sub(rb)) && reg_ok(a, t, hybrid) && reg_ok(b, t, hybrid),
                AluOp::Mul => match (a, b) {
                    // Multiplication by a constant preserves the code:
                    // (3x)·k = 3(xk). Register-register multiply would square
                    // the A factor and is not AN-transparent.
                    (Operand::Reg(_), Operand::Imm(k)) => {
                        *k >= 0 && fits(ra.mul(rb)) && reg_ok(a, t, hybrid)
                    }
                    (Operand::Imm(k), Operand::Reg(_)) => {
                        *k >= 0 && fits(ra.mul(rb)) && reg_ok(b, t, hybrid)
                    }
                    _ => false,
                },
                AluOp::Shl => match b {
                    Operand::Imm(k) => {
                        let k = (*k as u64 % width.bits() as u64) as u32;
                        fits(ra.shl(k)) && reg_ok(a, t, hybrid)
                    }
                    Operand::Reg(_) => false,
                },
                // and/or/xor/shifts-right/divisions do not propagate
                // AN-codes (Peterson & Rabin, cited as [18] in the paper).
                _ => false,
            }
        }
        // Bounded unsigned loads are chain roots: the loaded value is
        // re-encoded from the single copy (the unavoidable window).
        Inst::Load { width, signed, .. } => {
            !*signed && matches!(width, MemWidth::B1 | MemWidth::B2 | MemWidth::B4)
        }
        _ => false,
    }
}

/// Emits `vt = 3·v` (as shift-and-add, the paper's note in §4.2) after a
/// chain root. Returns nothing; the shadow map now tracks `v`.
pub(crate) fn emit_encode(rw: &mut Rewriter, tmap: &mut ShadowMap, v: Vreg) {
    rw.stats.encodes += 1;
    let prev = rw.set_role(ProtectionRole::Redundant { copy: 1 });
    let tmp = rw.vreg(RegClass::Int);
    rw.emit(Inst::Alu {
        op: AluOp::Shl,
        width: Width::W64,
        dst: tmp,
        a: Operand::reg(v),
        b: Operand::imm(1),
    });
    let vt = tmap.shadow(rw, v);
    rw.emit(Inst::Alu {
        op: AluOp::Add,
        width: Width::W64,
        dst: vt,
        a: Operand::reg(tmp),
        b: Operand::reg(v),
    });
    rw.set_role(prev);
}

/// Emits the TRUMP check-and-recover sequence for `v` (Figures 4 and 5):
/// fault-free cost is shift, add, compare, branch.
pub(crate) fn emit_check(rw: &mut Rewriter, tmap: &mut ShadowMap, v: Vreg) {
    rw.stats.checks += 1;
    let prev = rw.set_role(ProtectionRole::AnCheck);
    let vt = tmap.shadow(rw, v);
    let tmp = rw.vreg(RegClass::Int);
    rw.emit(Inst::Alu {
        op: AluOp::Shl,
        width: Width::W64,
        dst: tmp,
        a: Operand::reg(v),
        b: Operand::imm(1),
    });
    let enc = rw.vreg(RegClass::Int);
    rw.emit(Inst::Alu {
        op: AluOp::Add,
        width: Width::W64,
        dst: enc,
        a: Operand::reg(tmp),
        b: Operand::reg(v),
    });
    let c = rw.vreg(RegClass::Int);
    rw.emit(Inst::Cmp {
        op: CmpOp::Ne,
        width: Width::W64,
        dst: c,
        a: Operand::reg(enc),
        b: Operand::reg(vt),
    });
    let (recover, fall) = rw.branch_off(c);

    // Rare path: decide which copy the fault hit.
    rw.start_block(recover);
    let m = rw.vreg(RegClass::Int);
    rw.emit(Inst::Alu {
        op: AluOp::RemU,
        width: Width::W64,
        dst: m,
        a: Operand::reg(vt),
        b: Operand::imm(3),
    });
    let z = rw.vreg(RegClass::Int);
    rw.emit(Inst::Cmp {
        op: CmpOp::Eq,
        width: Width::W64,
        dst: z,
        a: Operand::reg(m),
        b: Operand::imm(0),
    });
    let fix_orig = rw.new_block();
    let fix_shadow = rw.new_block();
    rw.seal(Terminator::Branch {
        cond: z,
        t: fix_orig,
        f: fix_shadow,
    });
    // Shadow still a codeword: the original was struck; x := xt / 3.
    rw.start_block(fix_orig);
    rw.emit(Inst::Alu {
        op: AluOp::DivU,
        width: Width::W64,
        dst: v,
        a: Operand::reg(vt),
        b: Operand::imm(3),
    });
    rw.emit(Inst::Probe(ProbeEvent::TrumpRecover));
    rw.seal(Terminator::Jump(fall));
    // Shadow broken: re-encode from the original; xt := 3x.
    rw.start_block(fix_shadow);
    let tmp2 = rw.vreg(RegClass::Int);
    rw.emit(Inst::Alu {
        op: AluOp::Shl,
        width: Width::W64,
        dst: tmp2,
        a: Operand::reg(v),
        b: Operand::imm(1),
    });
    rw.emit(Inst::Alu {
        op: AluOp::Add,
        width: Width::W64,
        dst: vt,
        a: Operand::reg(tmp2),
        b: Operand::reg(v),
    });
    rw.emit(Inst::Probe(ProbeEvent::TrumpRecover));
    rw.seal(Terminator::Jump(fall));
    rw.start_block(fall);
    rw.set_role(prev);
}

/// Emits the AN shadow of a protected ALU/Mov/Assume definition. `fuse`
/// resolves a register operand to its AN shadow (pure TRUMP: the operand's
/// shadow; hybrid: possibly a freshly fused one).
pub(crate) fn emit_shadow_op(
    rw: &mut Rewriter,
    dt: Vreg,
    inst: &Inst,
    mut an_src: impl FnMut(&mut Rewriter, Vreg) -> Vreg,
) {
    let an_operand =
        |rw: &mut Rewriter, o: &Operand, f: &mut dyn FnMut(&mut Rewriter, Vreg) -> Vreg| match o {
            Operand::Reg(r) => Operand::reg(f(rw, *r)),
            Operand::Imm(i) => Operand::imm(((*i as u64).wrapping_mul(3)) as i64),
        };
    let prev = rw.set_role(ProtectionRole::Redundant { copy: 1 });
    match inst {
        Inst::Mov { src, .. } => {
            let s = an_operand(rw, src, &mut an_src);
            rw.emit(Inst::Mov { dst: dt, src: s });
        }
        Inst::Assume { src, .. } => {
            let s = an_src(rw, *src);
            rw.emit(Inst::Mov {
                dst: dt,
                src: Operand::reg(s),
            });
        }
        Inst::Alu { op, a, b, .. } => {
            match op {
                AluOp::Add | AluOp::Sub => {
                    let ta = an_operand(rw, a, &mut an_src);
                    let tb = an_operand(rw, b, &mut an_src);
                    rw.emit(Inst::Alu {
                        op: *op,
                        width: Width::W64,
                        dst: dt,
                        a: ta,
                        b: tb,
                    });
                }
                // (3x)·k = 3(xk): the *plain* constant multiplies the shadow.
                AluOp::Mul => {
                    let (reg, k) = match (a, b) {
                        (Operand::Reg(r), Operand::Imm(k)) | (Operand::Imm(k), Operand::Reg(r)) => {
                            (*r, *k)
                        }
                        _ => unreachable!("capability rejected reg*reg multiply"),
                    };
                    let tr = an_src(rw, reg);
                    rw.emit(Inst::Alu {
                        op: AluOp::Mul,
                        width: Width::W64,
                        dst: dt,
                        a: Operand::reg(tr),
                        b: Operand::imm(k),
                    });
                }
                AluOp::Shl => {
                    let (reg, k) = match (a, b) {
                        (Operand::Reg(r), Operand::Imm(k)) => (*r, *k),
                        _ => unreachable!("capability rejected non-const shift"),
                    };
                    let tr = an_src(rw, reg);
                    rw.emit(Inst::Alu {
                        op: AluOp::Shl,
                        width: Width::W64,
                        dst: dt,
                        a: Operand::reg(tr),
                        b: Operand::imm(k),
                    });
                }
                _ => unreachable!("capability admitted a non-AN op: {op}"),
            }
        }
        other => unreachable!("no AN shadow form for {other}"),
    }
    rw.set_role(prev);
}

struct TrumpPass<'c> {
    cfg: &'c TransformConfig,
    t: HashSet<Vreg>,
    tmap: ShadowMap,
}

impl TrumpPass<'_> {
    fn in_t(&self, v: Vreg) -> bool {
        self.t.contains(&v)
    }

    fn check_if_protected(&mut self, rw: &mut Rewriter, o: Operand) {
        if let Operand::Reg(r) = o {
            if r.is_int() && self.in_t(r) {
                emit_check(rw, &mut self.tmap, r);
            }
        }
    }

    fn rewrite_inst(&mut self, rw: &mut Rewriter, inst: &Inst) {
        match inst {
            Inst::Alu { dst, .. } | Inst::Mov { dst, .. } | Inst::Assume { dst, .. }
                if self.in_t(*dst) =>
            {
                rw.emit(inst.clone());
                // Pure TRUMP: a register operand is either protected (use
                // its shadow) or the whole def would not have been capable —
                // except `assume`, which is a sanctioned chain root.
                if let Inst::Assume { dst, src, .. } = inst {
                    if !self.t.contains(src) {
                        emit_encode(rw, &mut self.tmap, *dst);
                        return;
                    }
                }
                let dt = self.tmap.shadow(rw, *dst);
                let t = &self.t;
                let tmap = &mut self.tmap;
                emit_shadow_op(rw, dt, inst, |rw2, r| {
                    debug_assert!(t.contains(&r), "pure TRUMP operand {r} unprotected");
                    tmap.shadow(rw2, r)
                });
            }
            // The data slices feeding branches are verified where they
            // collapse into a (non-encodable) boolean: at the compare.
            Inst::Cmp { a, b, .. } => {
                if self.cfg.check_branches {
                    self.check_if_protected(rw, *a);
                    self.check_if_protected(rw, *b);
                }
                rw.emit(inst.clone());
            }
            Inst::Load { dst, base, .. } => {
                if self.in_t(*base) {
                    emit_check(rw, &mut self.tmap, *base);
                }
                rw.emit(inst.clone());
                if self.in_t(*dst) {
                    emit_encode(rw, &mut self.tmap, *dst);
                }
            }
            Inst::FLoad { base, .. } => {
                if self.in_t(*base) {
                    emit_check(rw, &mut self.tmap, *base);
                }
                rw.emit(inst.clone());
            }
            Inst::Store { base, src, .. } => {
                if self.in_t(*base) {
                    emit_check(rw, &mut self.tmap, *base);
                }
                if self.cfg.check_store_values {
                    self.check_if_protected(rw, *src);
                }
                rw.emit(inst.clone());
            }
            Inst::FStore { base, .. } => {
                if self.in_t(*base) {
                    emit_check(rw, &mut self.tmap, *base);
                }
                rw.emit(inst.clone());
            }
            Inst::Call { args, .. } => {
                if self.cfg.check_call_args {
                    for a in args.clone() {
                        self.check_if_protected(rw, a);
                    }
                }
                rw.emit(inst.clone());
            }
            _ => rw.emit(inst.clone()),
        }
    }

    fn rewrite_term(&mut self, rw: &mut Rewriter, term: &Terminator) {
        if let Terminator::Ret { vals } = term {
            if self.cfg.check_ret_vals {
                for v in vals.clone() {
                    self.check_if_protected(rw, v);
                }
            }
        }
        rw.seal(term.clone());
    }
}

/// Rewrites one function under pure TRUMP with a precomputed protected set;
/// the `TrumpApplyPass` body.
pub(crate) fn rewrite_trump_func(
    func: &Function,
    cfg: &TransformConfig,
    t: HashSet<Vreg>,
) -> (Function, crate::rewrite::RewriteStats) {
    let mut rw = Rewriter::new(func);
    let mut pass = TrumpPass {
        cfg,
        t,
        tmap: ShadowMap::new(),
    };
    for (bid, block) in func.iter_blocks() {
        rw.start_block(bid);
        for inst in &block.insts {
            pass.rewrite_inst(&mut rw, inst);
        }
        pass.rewrite_term(&mut rw, &block.term);
    }
    let stats = rw.stats;
    (rw.finish(), stats)
}

/// Applies the pure TRUMP transform (paper §4.2).
///
/// ```
/// use sor_core::{apply_trump, trump_protected_set, TransformConfig};
/// use sor_ir::{MemWidth, ModuleBuilder, Operand, Width};
///
/// let mut mb = ModuleBuilder::new("demo");
/// let g = mb.alloc_global_i32s("g", &[7]);
/// let mut f = mb.function("main");
/// let base = f.movi(g as i64);
/// let x = f.load(MemWidth::B4, base, 0); // bounded: a chain root
/// let y = f.mul(Width::W64, x, 3i64);    // AN-transparent
/// f.emit(Operand::reg(y));
/// f.ret(&[]);
/// let id = f.finish();
/// let module = mb.finish(id);
///
/// // The whole chain is provably encodable...
/// let t = trump_protected_set(&module.funcs[0], false);
/// assert!(t.len() >= 3);
/// // ...and the transform emits the 3x shadows and checks.
/// let hardened = apply_trump(&module, &TransformConfig::default());
/// assert!(sor_ir::verify(&hardened).is_ok());
/// ```
pub fn apply_trump(module: &Module, cfg: &TransformConfig) -> Module {
    crate::pass::run_technique(crate::Technique::Trump, module, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_ir::{verify, ModuleBuilder};
    use sor_regalloc::{lower, LowerConfig};
    use sor_sim::{FaultSpec, Machine, MachineConfig, Outcome, Runner};

    /// An arithmetic kernel whose whole chain is provably boundable.
    fn arith_module() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.alloc_global_i32s("g", &[100, 200, 300, 400]);
        let mut f = mb.function("main");
        let base = f.movi(g as i64);
        let mut acc = f.movi(0);
        for i in 0..4 {
            let x = f.load(MemWidth::B4, base, i * 4);
            let scaled = f.mul(Width::W64, x, 5i64);
            let t = f.add(Width::W64, acc, scaled);
            acc = f.assume(t, 0, 1 << 40);
        }
        f.store(MemWidth::B8, base, 16, acc);
        f.emit(Operand::reg(acc));
        f.ret(&[]);
        let id = f.finish();
        mb.finish(id)
    }

    /// A logic-heavy kernel TRUMP mostly cannot protect.
    fn logic_module() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.alloc_global_u64s("g", &[0xDEAD_BEEF, 0]);
        let mut f = mb.function("main");
        let base = f.movi(g as i64);
        let x = f.load(MemWidth::B8, base, 0);
        let a = f.xor(Width::W64, x, 0x1234i64);
        let b = f.or(Width::W64, a, x);
        let c = f.shrl(Width::W64, b, 3i64);
        f.store(MemWidth::B8, base, 8, c);
        f.emit(Operand::reg(c));
        f.ret(&[]);
        let id = f.finish();
        mb.finish(id)
    }

    #[test]
    fn capability_follows_instruction_mix() {
        let arith = arith_module();
        let t = trump_protected_set(&arith.funcs[0], false);
        // The accumulator chain and loads are protected.
        assert!(t.len() >= 8, "arith chain should be protectable: {t:?}");

        let logic = logic_module();
        let t2 = trump_protected_set(&logic.funcs[0], false);
        // xor/or/shr results are not protectable.
        assert!(
            t2.len() <= 2,
            "logic chain should be mostly unprotectable: {t2:?}"
        );
    }

    #[test]
    fn transform_verifies_and_preserves_semantics() {
        for m in [arith_module(), logic_module()] {
            let t = apply_trump(&m, &TransformConfig::default());
            verify(&t).expect("verifies");
            let p0 = lower(&m, &LowerConfig::default()).unwrap();
            let p1 = lower(&t, &LowerConfig::default()).unwrap();
            let r0 = Machine::new(&p0, &MachineConfig::default()).run(None);
            let r1 = Machine::new(&p1, &MachineConfig::default()).run(None);
            assert_eq!(r0.output, r1.output, "module {}", m.name);
            assert_eq!(r1.probes.trump_recovers, 0);
        }
    }

    #[test]
    fn trump_recovers_faults_on_protected_chain() {
        let m = arith_module();
        let t = apply_trump(&m, &TransformConfig::default());
        let p = lower(&t, &LowerConfig::default()).unwrap();
        let runner = Runner::new(&p, &MachineConfig::default());
        let len = runner.golden().dyn_instrs;
        let mut recovered = 0u64;
        let mut bad = 0u64;
        let mut total = 0u64;
        for at in 0..len {
            for reg in [0u8, 2, 3, 4] {
                let (o, res) = runner.run_fault(FaultSpec::new(at, reg, 17));
                total += 1;
                recovered += res.probes.trump_recovers;
                if o != Outcome::UnAce {
                    bad += 1;
                }
            }
        }
        assert!(recovered > 0, "TRUMP recovery never fired");
        assert!(
            (bad as f64) < total as f64 * 0.10,
            "{bad}/{total} fault runs were damaging"
        );
    }

    #[test]
    fn parameters_are_never_trump_protected() {
        // Regression: parameters have no defining instruction, so the
        // removal-at-defs fixpoint used to leave them in the protected set —
        // and the transform then read an uninitialized shadow for them.
        let mut mb = ModuleBuilder::new("t");
        let helper = mb.declare("helper");
        let mut main = mb.function("main");
        let r = main.call(helper, &[Operand::imm(21)], &[sor_ir::RegClass::Int]);
        main.emit(Operand::reg(r[0]));
        main.ret(&[]);
        let main_id = main.finish();
        let mut h = mb.define(helper, "helper");
        let p = h.param(sor_ir::RegClass::Int);
        h.set_ret_count(1);
        let bounded = h.assume(p, 0, 1 << 20);
        let d = h.mul(Width::W64, bounded, 2i64);
        h.ret(&[Operand::reg(d)]);
        h.finish();
        let m = mb.finish(main_id);

        let helper_fn = m.func_by_name("helper").unwrap();
        for hybrid in [false, true] {
            let t = trump_protected_set(m.func(helper_fn), hybrid);
            assert!(!t.contains(&p), "param protected (hybrid={hybrid})");
            // The assume chain itself is protectable.
            assert!(t.contains(&bounded), "assume root lost (hybrid={hybrid})");
        }

        let transformed = apply_trump(&m, &TransformConfig::default());
        verify(&transformed).unwrap();
        let prog = lower(&transformed, &LowerConfig::default()).unwrap();
        let r = Machine::new(&prog, &MachineConfig::default()).run(None);
        assert_eq!(r.output, vec![42]);
    }

    #[test]
    fn an_code_identity_holds_through_shadow_ops() {
        // 3x + 3y == 3(x+y), (3x)*k == 3(xk), (3x)<<n == 3(x<<n).
        for x in [0u64, 1, 7, 1 << 20, (u64::MAX / 3) >> 8] {
            for y in [0u64, 5, 1 << 10] {
                assert_eq!(3 * x + 3 * y, 3 * (x + y));
                assert_eq!((3 * x) * 9, 3 * (x * 9));
                assert_eq!((3 * x) << 4, 3 * (x << 4));
            }
        }
    }

    #[test]
    fn single_bit_flip_never_preserves_divisibility() {
        // The detection property behind Figure 4: for any in-range codeword
        // 3x and any bit k (no wraparound), 3x ^ 2^k is not divisible by 3.
        for x in [1u64, 2, 3, 1000, 123_456_789, u64::MAX / 3 / 2] {
            let code = 3 * x;
            for k in 0..62 {
                // 3x ^ 2^k = 3x ± 2^k, and 2^k mod 3 is 1 or 2 — never 0.
                let faulty = code ^ (1u64 << k);
                assert_ne!(faulty % 3, 0, "x={x} k={k}");
            }
        }
    }
}
