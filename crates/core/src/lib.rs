//! # sor-core — automatic instruction-level software-only recovery
//!
//! The paper's contribution: compiler transforms that make a program
//! tolerate single-event-upset register faults with no hardware support.
//!
//! | Technique | Redundancy | On mismatch | Paper |
//! |---|---|---|---|
//! | [`Technique::Swift`] | one shadow copy | detect (trap) | §2.2, the CGO'05 baseline |
//! | [`Technique::SwiftR`] | two shadow copies | majority vote repairs | §3 |
//! | [`Technique::Trump`] | one AN-coded copy `3·x` | divisibility test picks the survivor | §4 |
//! | [`Technique::Mask`] | none | provably-zero bits re-zeroed | §5 |
//! | [`Technique::TrumpSwiftR`] | TRUMP where provable, SWIFT-R elsewhere | both | §6.1 |
//! | [`Technique::TrumpMask`] | TRUMP + masking of unprotected values | both | §6.2 |
//!
//! All transforms run on virtual-register IR *before* register allocation,
//! exactly as the paper's gcc pass did; every check/vote/recovery sequence
//! is emitted as ordinary IR instructions, so the windows of vulnerability
//! (§3.2) exist here for the same structural reasons as on real hardware.
//!
//! ```
//! use sor_core::Technique;
//! use sor_ir::{ModuleBuilder, Operand, Width};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let mut f = mb.function("main");
//! let x = f.movi(20);
//! let y = f.add(Width::W64, x, 22i64);
//! f.emit(Operand::reg(y));
//! f.ret(&[]);
//! let id = f.finish();
//! let module = mb.finish(id);
//!
//! let protected = Technique::SwiftR.apply(&module);
//! assert!(protected.inst_count() > module.inst_count());
//! assert!(sor_ir::verify(&protected).is_ok());
//! ```

mod cfc;
mod config;
mod coverage;
mod hybrid;
mod mask;
mod nmr;
mod pass;
mod rewrite;
mod swift;
mod swiftr;
mod technique;
mod trump;

pub use cfc::CfcPass;
pub use config::TransformConfig;
pub use coverage::{coverage, CoverageReport, FuncCoverage};
pub use hybrid::{apply_trump_mask, apply_trump_swiftr};
pub use mask::apply_mask;
pub use pass::{
    MaskPass, NmrApplyPass, Pass, PassCtx, PassStats, Pipeline, PipelineError, PipelineOutput,
    PipelineReport, TrumpApplyPass, TrumpPartitionPass, TrumpSwiftRFusePass,
};
pub use rewrite::RewriteStats;
pub use swift::apply_swift;
pub use swiftr::apply_swiftr;
pub use technique::Technique;
pub use trump::{apply_trump, trump_protected_set};
