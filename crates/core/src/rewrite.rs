//! Shared function-rewriting machinery for all transforms.
//!
//! A [`Rewriter`] rebuilds a function block by block. [`Rewriter::new`]
//! pre-creates one new block per old block *with the same ids* — block `i`
//! of the old function is always block `i` of the new one — so old
//! terminators keep their targets without remapping. Check/vote sequences
//! that need control flow allocate fresh blocks via
//! [`new_block`](Rewriter::new_block)/[`branch_off`](Rewriter::branch_off);
//! fresh ids are handed out strictly *after* the pre-created range and
//! never disturb it, no matter how the interleaving of original blocks and
//! detours proceeds.
//!
//! Every pre-created or fresh block starts life with a
//! `Trap(TrapKind::Abort)` placeholder terminator. A placeholder is not a
//! valid terminator for a finished function: the transform must
//! [`seal`](Rewriter::seal) every block it touches, and `sor_ir::verify`
//! rejects any leftover `Trap(Abort)` so a forgotten seal fails
//! verification instead of aborting at runtime.

use sor_ir::{
    Block, BlockId, BlockRoles, FuncRoles, Function, Inst, ProtectionRole, RegClass, Terminator,
    TrapKind, Vreg,
};
use std::collections::HashMap;

/// Counters of the protection constructs a transform emitted — the
/// per-pass instrumentation surfaced by `PassStats` and the coverage
/// report.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RewriteStats {
    /// TRUMP divisibility checks and SWIFT detection checks.
    pub checks: u64,
    /// SWIFT-R majority votes.
    pub votes: u64,
    /// TRUMP `3·x` re-encodes at chain roots.
    pub encodes: u64,
    /// Figure 7 fuses (`rt = 2·r' + r''`) at SWIFT-R→TRUMP transitions.
    pub fuses: u64,
    /// MASK enforcement instructions inserted.
    pub masks: u64,
}

impl RewriteStats {
    /// Accumulates `other` into `self` (per-function → per-pass totals).
    pub fn absorb(&mut self, other: RewriteStats) {
        self.checks += other.checks;
        self.votes += other.votes;
        self.encodes += other.encodes;
        self.fuses += other.fuses;
        self.masks += other.masks;
    }
}

/// Incremental builder for the transformed copy of one function.
#[derive(Debug)]
pub struct Rewriter {
    func: Function,
    roles: FuncRoles,
    role: ProtectionRole,
    cur: BlockId,
    /// What this rewrite emitted so far; the emit helpers in the technique
    /// modules bump these as they go.
    pub stats: RewriteStats,
}

impl Rewriter {
    /// Starts rewriting `old`: the new function shares name, parameters,
    /// return count and virtual-register numbering, and has one empty block
    /// per old block, at the *same* [`BlockId`]s, each holding a
    /// `Trap(Abort)` placeholder terminator until the transform seals it.
    pub fn new(old: &Function) -> Self {
        let mut func = Function::new(old.name.clone());
        func.params = old.params.clone();
        func.ret_count = old.ret_count;
        func.set_vreg_counts(old.int_vreg_count(), old.float_vreg_count());
        let mut roles = FuncRoles::default();
        for _ in &old.blocks {
            func.push_block(Block::new(Terminator::Trap(TrapKind::Abort)));
            roles.blocks.push(BlockRoles::default());
        }
        Rewriter {
            func,
            roles,
            role: ProtectionRole::Original,
            cur: BlockId(0),
            stats: RewriteStats::default(),
        }
    }

    /// Sets the [`ProtectionRole`] tagged onto subsequently emitted
    /// instructions and terminators, returning the previous role so emit
    /// helpers can restore it when their sequence ends.
    pub fn set_role(&mut self, role: ProtectionRole) -> ProtectionRole {
        std::mem::replace(&mut self.role, role)
    }

    /// The role currently tagged onto emitted instructions.
    pub fn role(&self) -> ProtectionRole {
        self.role
    }

    /// Switches emission to (the rebuilt copy of) block `b`.
    pub fn start_block(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// Allocates a fresh virtual register.
    pub fn vreg(&mut self, class: RegClass) -> Vreg {
        self.func.new_vreg(class)
    }

    /// Allocates a fresh (empty) block with a `Trap(Abort)` placeholder
    /// terminator. Fresh ids come strictly after the pre-created range
    /// (`old.blocks.len()..`), so already-emitted terminators targeting
    /// original ids stay valid.
    pub fn new_block(&mut self) -> BlockId {
        self.roles.blocks.push(BlockRoles::default());
        self.func
            .push_block(Block::new(Terminator::Trap(TrapKind::Abort)))
    }

    /// Appends an instruction to the current block, tagged with the current
    /// role.
    pub fn emit(&mut self, inst: Inst) {
        let cur = self.cur;
        self.func.block_mut(cur).insts.push(inst);
        self.roles.blocks[cur.index()].insts.push(self.role);
    }

    /// Seals the current block with `term` (emission must continue in some
    /// other block afterwards); the terminator carries the current role.
    pub fn seal(&mut self, term: Terminator) {
        let cur = self.cur;
        self.func.block_mut(cur).term = term;
        self.roles.blocks[cur.index()].term = self.role;
    }

    /// Seals the current block with a two-way branch and moves emission to a
    /// fresh fall-through block; returns `(taken, fallthrough)`.
    ///
    /// The caller fills the `taken` block (usually a repair sequence ending
    /// in a jump back to `fallthrough`) via [`start_block`](Self::start_block)
    /// and then resumes on the fall-through path.
    pub fn branch_off(&mut self, cond: Vreg) -> (BlockId, BlockId) {
        let taken = self.new_block();
        let fall = self.new_block();
        self.seal(Terminator::Branch {
            cond,
            t: taken,
            f: fall,
        });
        self.cur = fall;
        (taken, fall)
    }

    /// Finishes the rewrite, attaching the recorded role table.
    pub fn finish(self) -> Function {
        let mut func = self.func;
        func.roles = Some(self.roles);
        func
    }
}

/// A map from original registers to their shadow copies.
///
/// Shadows are created lazily; a shadow for a never-written register is
/// harmless (both sides read as zero).
#[derive(Debug, Default)]
pub struct ShadowMap {
    map: HashMap<Vreg, Vreg>,
}

impl ShadowMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        ShadowMap::default()
    }

    /// The shadow of `v`, created on first request.
    pub fn shadow(&mut self, rw: &mut Rewriter, v: Vreg) -> Vreg {
        debug_assert_eq!(v.class(), RegClass::Int, "only integer values shadow");
        *self.map.entry(v).or_insert_with(|| rw.vreg(RegClass::Int))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_ir::{AluOp, ModuleBuilder, Operand, Width};

    #[test]
    fn rewriter_preserves_block_ids() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let c = f.cmp(sor_ir::CmpOp::Eq, Width::W64, 1i64, 1i64);
        let a = f.block();
        let b = f.block();
        f.branch(c, a, b);
        f.switch_to(a);
        f.ret(&[]);
        f.switch_to(b);
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let old = &m.funcs[0];

        let mut rw = Rewriter::new(old);
        for (bid, block) in old.iter_blocks() {
            rw.start_block(bid);
            for inst in &block.insts {
                rw.emit(inst.clone());
            }
            rw.seal(block.term.clone());
        }
        let new = rw.finish();
        assert_eq!(new.blocks.len(), old.blocks.len());
        assert_eq!(&new, old, "identity rewrite must reproduce the function");
    }

    #[test]
    fn branch_off_creates_detour() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let v = f.movi(0);
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let old = &m.funcs[0];

        let mut rw = Rewriter::new(old);
        rw.start_block(BlockId(0));
        rw.emit(old.blocks[0].insts[0].clone());
        let (taken, fall) = rw.branch_off(v);
        rw.start_block(taken);
        rw.emit(Inst::Alu {
            op: AluOp::Add,
            width: Width::W64,
            dst: v,
            a: Operand::reg(v),
            b: Operand::imm(1),
        });
        rw.seal(Terminator::Jump(fall));
        rw.start_block(fall);
        rw.seal(Terminator::Ret { vals: vec![] });
        let new = rw.finish();
        assert_eq!(new.blocks.len(), 3);
        assert!(matches!(new.blocks[0].term, Terminator::Branch { .. }));
    }

    #[test]
    fn new_blocks_never_disturb_original_ids() {
        // A check/vote-style rewrite that detours out of *every* original
        // block: fresh blocks must land strictly past the original range, in
        // allocation order, and the original ids must keep addressing the
        // rebuilt copies of the original blocks.
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let c = f.cmp(sor_ir::CmpOp::Eq, Width::W64, 1i64, 1i64);
        let a = f.block();
        let b = f.block();
        f.branch(c, a, b);
        f.switch_to(a);
        f.ret(&[]);
        f.switch_to(b);
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let old = &m.funcs[0];
        let orig = old.blocks.len();

        let mut rw = Rewriter::new(old);
        let mut detours = Vec::new();
        for (bid, block) in old.iter_blocks() {
            rw.start_block(bid);
            for inst in &block.insts {
                rw.emit(inst.clone());
            }
            // Emit a vote-shaped detour before the original terminator.
            let v = rw.vreg(RegClass::Int);
            let (taken, fall) = rw.branch_off(v);
            detours.push((taken, fall));
            rw.start_block(taken);
            rw.seal(Terminator::Jump(fall));
            rw.start_block(fall);
            rw.seal(block.term.clone());
        }
        let new = rw.finish();

        for (i, (taken, fall)) in detours.iter().enumerate() {
            assert!(taken.index() >= orig, "detour {i} reused an original id");
            assert!(fall.index() >= orig, "detour {i} reused an original id");
            // branch_off allocates (taken, fall) adjacently, in order.
            assert_eq!(taken.index() + 1, fall.index());
        }
        assert_eq!(new.blocks.len(), orig + 2 * detours.len());
        // The original ids still hold the original control flow: block 0
        // kept its compare, and its (rewritten) path still reaches a Ret
        // through the detour chain at the original targets.
        assert!(!new.blocks[0].insts.is_empty());
        assert!(matches!(
            new.blocks[detours[1].1.index()].term,
            Terminator::Ret { .. }
        ));
        // No block escaped sealing.
        for (i, blk) in new.blocks.iter().enumerate() {
            assert!(
                !matches!(blk.term, Terminator::Trap(TrapKind::Abort)),
                "block {i} left unsealed"
            );
        }
    }

    #[test]
    fn roles_track_emission_and_sealing() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let v = f.movi(0);
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let old = &m.funcs[0];

        let mut rw = Rewriter::new(old);
        rw.start_block(BlockId(0));
        rw.emit(old.blocks[0].insts[0].clone());
        let prev = rw.set_role(ProtectionRole::Voter);
        assert_eq!(prev, ProtectionRole::Original);
        rw.emit(Inst::Mov {
            dst: v,
            src: Operand::reg(v),
        });
        rw.set_role(prev);
        rw.seal(Terminator::Ret { vals: vec![] });
        let new = rw.finish();
        let roles = new.roles.as_ref().expect("finish attaches roles");
        assert_eq!(
            roles.blocks[0].insts,
            vec![ProtectionRole::Original, ProtectionRole::Voter]
        );
        assert_eq!(roles.blocks[0].term, ProtectionRole::Original);
        // Table stays aligned with the code.
        assert_eq!(roles.blocks[0].insts.len(), new.blocks[0].insts.len());
    }

    #[test]
    fn shadow_map_is_stable() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let v = f.movi(0);
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let mut rw = Rewriter::new(&m.funcs[0]);
        let mut sm = ShadowMap::new();
        let s1 = sm.shadow(&mut rw, v);
        let s2 = sm.shadow(&mut rw, v);
        assert_eq!(s1, s2);
        assert_ne!(s1, v);
    }
}
