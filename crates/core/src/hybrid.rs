//! The hybrid techniques: TRUMP/SWIFT-R (§6.1) and TRUMP/MASK (§6.2).

use crate::config::TransformConfig;
use crate::nmr::{dup_into, emit_vote};
use crate::rewrite::{Rewriter, ShadowMap};
use crate::trump::{emit_check, emit_encode, emit_shadow_op};
use sor_ir::{
    AluOp, Function, Inst, Module, Operand, ProtectionRole, RegClass, Terminator, Vreg, Width,
};
use std::collections::HashSet;

/// TRUMP/MASK: TRUMP protects every provable arithmetic chain; MASK then
/// enforces invariants on the values TRUMP could not cover. The two are
/// nearly disjoint by construction — TRUMP handles arithmetic, MASK's
/// provably-zero bits almost always come from logical operations — which is
/// exactly the paper's complementarity argument. In pipeline form this is
/// literally `[TrumpApplyPass, MaskPass(skip_trump)]`.
pub fn apply_trump_mask(module: &Module, cfg: &TransformConfig) -> Module {
    crate::pass::run_technique(crate::Technique::TrumpMask, module, cfg)
}

/// TRUMP/SWIFT-R: TRUMP wherever the compiler can prove applicability,
/// SWIFT-R everywhere else, with the Figure 7 fuse (`rt = 2·r' + r''`)
/// converting SWIFT-R redundancy into AN redundancy at each chain's single
/// SWIFT-R→TRUMP transition. In pipeline form this is the partition
/// analysis pass followed by the fused rewrite pass.
pub fn apply_trump_swiftr(module: &Module, cfg: &TransformConfig) -> Module {
    crate::pass::run_technique(crate::Technique::TrumpSwiftR, module, cfg)
}

struct HybridPass<'c> {
    cfg: &'c TransformConfig,
    t: HashSet<Vreg>,
    tmap: ShadowMap,
    s1: ShadowMap,
    s2: ShadowMap,
}

/// Rewrites one function under TRUMP/SWIFT-R with a precomputed hybrid
/// partition `t` (the TRUMP side); the `TrumpSwiftRFusePass` body.
pub(crate) fn rewrite_hybrid_func(
    old: &Function,
    cfg: &TransformConfig,
    t: HashSet<Vreg>,
) -> (Function, crate::rewrite::RewriteStats) {
    let mut rw = Rewriter::new(old);
    let mut pass = HybridPass {
        cfg,
        t,
        tmap: ShadowMap::new(),
        s1: ShadowMap::new(),
        s2: ShadowMap::new(),
    };
    for (bid, block) in old.iter_blocks() {
        rw.start_block(bid);
        if bid.index() == 0 {
            for p in old.params.clone() {
                if p.is_int() {
                    // Parameters are never TRUMP-capable (unknown range).
                    pass.replicate(&mut rw, p);
                }
            }
        }
        for inst in &block.insts {
            pass.rewrite_inst(&mut rw, inst);
        }
        pass.rewrite_term(&mut rw, &block.term);
    }
    let stats = rw.stats;
    (rw.finish(), stats)
}

impl HybridPass<'_> {
    fn in_t(&self, v: Vreg) -> bool {
        self.t.contains(&v)
    }

    /// SWIFT-R two-copy replication after loads/calls/params.
    fn replicate(&mut self, rw: &mut Rewriter, v: Vreg) {
        let prev = rw.role();
        for (copy, sm) in [(1u8, &mut self.s1), (2, &mut self.s2)] {
            let s = sm.shadow(rw, v);
            rw.set_role(ProtectionRole::Redundant { copy });
            rw.emit(Inst::Mov {
                dst: s,
                src: Operand::reg(v),
            });
        }
        rw.set_role(prev);
    }

    /// The Figure 7 fuse: builds `2·v' + v''` — an AN codeword of `v` that
    /// inherits a fault in *either* SWIFT-R copy, so nothing is lost at the
    /// transition.
    fn fuse(&mut self, rw: &mut Rewriter, v: Vreg) -> Vreg {
        rw.stats.fuses += 1;
        let prev = rw.set_role(ProtectionRole::Redundant { copy: 1 });
        let v1 = self.s1.shadow(rw, v);
        let v2 = self.s2.shadow(rw, v);
        let tmp = rw.vreg(RegClass::Int);
        rw.emit(Inst::Alu {
            op: AluOp::Shl,
            width: Width::W64,
            dst: tmp,
            a: Operand::reg(v1),
            b: Operand::imm(1),
        });
        let fused = rw.vreg(RegClass::Int);
        rw.emit(Inst::Alu {
            op: AluOp::Add,
            width: Width::W64,
            dst: fused,
            a: Operand::reg(tmp),
            b: Operand::reg(v2),
        });
        rw.set_role(prev);
        fused
    }

    /// Verify `v` before it escapes: TRUMP check or SWIFT-R vote, depending
    /// on which redundancy tracks it.
    fn sync(&mut self, rw: &mut Rewriter, v: Vreg) {
        if self.in_t(v) {
            emit_check(rw, &mut self.tmap, v);
        } else {
            let v1 = self.s1.shadow(rw, v);
            let v2 = self.s2.shadow(rw, v);
            emit_vote(rw, v, v1, v2);
        }
    }

    fn sync_operand(&mut self, rw: &mut Rewriter, o: Operand) {
        if let Operand::Reg(r) = o {
            if r.is_int() {
                self.sync(rw, r);
            }
        }
    }

    fn rewrite_inst(&mut self, rw: &mut Rewriter, inst: &Inst) {
        match inst {
            Inst::Alu { .. }
            | Inst::Cmp { .. }
            | Inst::Mov { .. }
            | Inst::Select { .. }
            | Inst::Assume { .. } => {
                rw.emit(inst.clone());
                let defs = inst.defs();
                let trump_def = defs.iter().any(|d| d.is_int() && self.in_t(*d));
                if trump_def {
                    // TRUMP side. Operands outside T are fused from their
                    // SWIFT-R copies at this (unique) transition point.
                    let mut fused: Vec<(Vreg, Vreg)> = Vec::new();
                    // Pre-fuse unprotected register operands (fusing inside
                    // the shadow-op callback would interleave emission).
                    for u in inst.uses() {
                        if u.is_int() && !self.in_t(u) && !fused.iter().any(|(o, _)| *o == u) {
                            let f = self.fuse(rw, u);
                            fused.push((u, f));
                        }
                    }
                    let dt = self.tmap.shadow(rw, defs[0]);
                    let t = &self.t;
                    let tmap = &mut self.tmap;
                    emit_shadow_op(rw, dt, inst, |rw2, r| {
                        if t.contains(&r) {
                            tmap.shadow(rw2, r)
                        } else {
                            fused
                                .iter()
                                .find(|(o, _)| *o == r)
                                .map(|(_, f)| *f)
                                .expect("operand fused above")
                        }
                    });
                } else {
                    // SWIFT-R side; the fixpoint guarantees operands are
                    // SWIFT-R-protected too.
                    debug_assert!(
                        inst.uses().iter().all(|u| !u.is_int() || !self.in_t(*u)),
                        "SWIFT-R dup of {inst} would need a TRUMP operand"
                    );
                    self.dup_twice(rw, inst);
                }
            }
            Inst::FCmp { dst, .. } | Inst::CvtFI { dst, .. } => {
                rw.emit(inst.clone());
                // Integer value born from the FP domain: recompute twice.
                self.dup_twice(rw, inst);
                let _ = dst;
            }
            Inst::Load { dst, base, .. } => {
                self.sync(rw, *base);
                rw.emit(inst.clone());
                if self.in_t(*dst) {
                    emit_encode(rw, &mut self.tmap, *dst);
                } else {
                    self.replicate(rw, *dst);
                }
            }
            Inst::FLoad { base, .. } => {
                self.sync(rw, *base);
                rw.emit(inst.clone());
            }
            Inst::Store { base, src, .. } => {
                self.sync(rw, *base);
                if self.cfg.check_store_values {
                    self.sync_operand(rw, *src);
                }
                rw.emit(inst.clone());
            }
            Inst::FStore { base, .. } => {
                self.sync(rw, *base);
                rw.emit(inst.clone());
            }
            Inst::Call { args, rets, .. } => {
                if self.cfg.check_call_args {
                    for a in args.clone() {
                        self.sync_operand(rw, a);
                    }
                }
                rw.emit(inst.clone());
                for r in rets.clone() {
                    if r.is_int() {
                        self.replicate(rw, r);
                    }
                }
            }
            Inst::Fpu { .. } | Inst::FMovImm { .. } | Inst::FMov { .. } | Inst::CvtIF { .. } => {
                let prev = rw.set_role(ProtectionRole::Unprotected);
                rw.emit(inst.clone());
                rw.set_role(prev);
            }
            Inst::Probe(_) => {
                let prev = rw.set_role(ProtectionRole::Unprotected);
                rw.emit(inst.clone());
                rw.set_role(prev);
            }
        }
    }

    /// Emits both SWIFT-R shadow duplicates of `inst`, role-tagged.
    fn dup_twice(&mut self, rw: &mut Rewriter, inst: &Inst) {
        let d1 = dup_into(rw, &mut self.s1, inst);
        let prev = rw.set_role(ProtectionRole::Redundant { copy: 1 });
        rw.emit(d1);
        let d2 = dup_into(rw, &mut self.s2, inst);
        rw.set_role(ProtectionRole::Redundant { copy: 2 });
        rw.emit(d2);
        rw.set_role(prev);
    }

    fn rewrite_term(&mut self, rw: &mut Rewriter, term: &Terminator) {
        match term {
            Terminator::Branch { cond, .. } => {
                if self.cfg.check_branches {
                    self.sync(rw, *cond);
                }
            }
            Terminator::Ret { vals } => {
                if self.cfg.check_ret_vals {
                    for v in vals.clone() {
                        self.sync_operand(rw, v);
                    }
                }
            }
            Terminator::Jump(_) | Terminator::Trap(_) => {}
        }
        rw.seal(term.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trump::trump_protected_set;
    use sor_ir::{verify, CmpOp, MemWidth, ModuleBuilder};
    use sor_ir::{AluOp, Inst, Operand};
    use sor_regalloc::{lower, LowerConfig};
    use sor_sim::{FaultSpec, Machine, MachineConfig, Outcome, Runner};

    /// Mixed kernel: a logic prefix (SWIFT-R territory) feeding an
    /// arithmetic suffix (TRUMP territory) — the Figure 7 shape.
    fn mixed_module() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.alloc_global_u64s("g", &[0xAB, 0xCD, 0, 0]);
        let mut f = mb.function("main");
        let base = f.movi(g as i64);
        let x = f.load(MemWidth::B8, base, 0);
        let masked = f.and(Width::W64, x, 0xFFi64); // SWIFT-R (logic)
        let idx = f.assume(masked, 0, 255); // transition point
        let scaled = f.mul(Width::W64, idx, 8i64); // TRUMP
        let sum = f.add(Width::W64, scaled, 16i64); // TRUMP
        f.store(MemWidth::B8, base, 16, sum);
        f.emit(Operand::reg(sum));
        // A loop to give faults time to land.
        let i = f.movi(0);
        let header = f.block();
        let body = f.block();
        let exit = f.block();
        f.jump(header);
        f.switch_to(header);
        let c = f.cmp(CmpOp::LtU, Width::W64, i, 24i64);
        f.branch(c, body, exit);
        f.switch_to(body);
        let iv = f.add(Width::W64, i, 1i64);
        f.mov_to(i, iv);
        let acc = f.xor(Width::W64, i, sum);
        f.store(MemWidth::B8, base, 24, acc);
        f.jump(header);
        f.switch_to(exit);
        f.ret(&[]);
        let id = f.finish();
        mb.finish(id)
    }

    #[test]
    fn hybrid_splits_protection() {
        let m = mixed_module();
        let t = trump_protected_set(&m.funcs[0], true);
        assert!(!t.is_empty(), "some values must be TRUMP-protected");
        let total = m.funcs[0].int_vreg_count();
        assert!(
            (t.len() as u32) < total,
            "some values must be SWIFT-R-protected"
        );
        let transformed = apply_trump_swiftr(&m, &TransformConfig::default());
        verify(&transformed).unwrap();
    }

    #[test]
    fn semantics_preserved() {
        let m = mixed_module();
        for t in [
            apply_trump_swiftr(&m, &TransformConfig::default()),
            apply_trump_mask(&m, &TransformConfig::default()),
        ] {
            verify(&t).unwrap();
            let p0 = lower(&m, &LowerConfig::default()).unwrap();
            let p1 = lower(&t, &LowerConfig::default()).unwrap();
            let r0 = Machine::new(&p0, &MachineConfig::default()).run(None);
            let r1 = Machine::new(&p1, &MachineConfig::default()).run(None);
            assert_eq!(r0.output, r1.output);
        }
    }

    #[test]
    fn figure7_fuse_sequence_is_emitted() {
        // The transition from SWIFT-R to TRUMP redundancy must be the
        // paper's Figure 7 fuse: rt = 2*r' + r'' (shl by 1, then add of two
        // *registers* — unlike an encode, whose add reuses the original).
        //
        // The chain mirrors Figure 7 itself: ld → and (SWIFT-R) → bounded
        // arithmetic (TRUMP) → st. The TRUMP suffix ends at the store, so
        // the §6.1 demotion rule leaves it protected and a fuse is needed
        // at the and→arith transition.
        let m = {
            let mut mb = ModuleBuilder::new("fig7");
            let g = mb.alloc_global_u64s("g", &[0x1234, 0]);
            let mut f = mb.function("main");
            let base = f.movi(g as i64);
            let x = f.load(MemWidth::B8, base, 0);
            let masked = f.and(Width::W64, x, 0xFFi64); // SWIFT-R side
            let idx = f.assume(masked, 0, 255); // transition
            let scaled = f.mul(Width::W64, idx, 8i64); // TRUMP side
            f.store(MemWidth::B8, base, 8, scaled);
            f.ret(&[]);
            let id = f.finish();
            mb.finish(id)
        };
        let t = apply_trump_swiftr(&m, &TransformConfig::default());
        let mut found_fuse = false;
        for block in &t.funcs[0].blocks {
            for w in block.insts.windows(2) {
                if let (
                    Inst::Alu {
                        op: AluOp::Shl,
                        dst: shl_dst,
                        a: Operand::Reg(shl_src),
                        b: Operand::Imm(1),
                        ..
                    },
                    Inst::Alu {
                        op: AluOp::Add,
                        a: Operand::Reg(add_a),
                        b: Operand::Reg(add_b),
                        ..
                    },
                ) = (&w[0], &w[1])
                {
                    // Fuse: the add consumes the shifted first shadow and a
                    // *different* register (the second shadow), not the
                    // shifted value's own source (that would be an encode).
                    if add_a == shl_dst && add_b != shl_src {
                        found_fuse = true;
                    }
                }
            }
        }
        assert!(found_fuse, "no Figure 7 fuse found:\n{}", t.funcs[0]);
    }

    #[test]
    fn hybrid_recovers_like_swiftr() {
        let m = mixed_module();
        let t = apply_trump_swiftr(&m, &TransformConfig::default());
        let p = lower(&t, &LowerConfig::default()).unwrap();
        let runner = Runner::new(&p, &MachineConfig::default());
        let len = runner.golden().dyn_instrs;
        let (mut bad, mut total, mut recovered) = (0u64, 0u64, 0u64);
        for at in (0..len).step_by(3) {
            for reg in [0u8, 2, 3, 4, 5, 6] {
                let (o, res) = runner.run_fault(FaultSpec::new(at, reg, 9));
                total += 1;
                if o != Outcome::UnAce {
                    bad += 1;
                }
                recovered += res.probes.vote_repairs + res.probes.trump_recovers;
            }
        }
        assert!(recovered > 0);
        assert!(
            (bad as f64) < total as f64 * 0.08,
            "{bad}/{total} injections damaged the hybrid"
        );
    }
}
