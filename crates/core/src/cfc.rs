//! Signature-based control-flow checking: CFCSS- and CEDA-style passes.
//!
//! The register-protection techniques (SWIFT-R, TRUMP, MASK) assume
//! control flow itself is correct: a fault that redirects the program
//! counter lands outside their protection domain entirely. These passes
//! close that gap with the classic software signature schemes:
//!
//! * **CFCSS** (Oh, Shirvani & McCluskey, *Control-Flow Checking by
//!   Software Signatures*, IEEE Trans. Reliability 2002): each basic block
//!   carries a compile-time signature `s_i`; a runtime signature register
//!   `G` is XOR-updated on every legal transition and compared against the
//!   expected signature at each block head. This implementation places the
//!   update on the *edge* (in the predecessor for single-successor exits,
//!   in a split block for branch edges) instead of using CFCSS's runtime
//!   adjusting signature `D`: the original `D`-based fan-in handling
//!   admits aliasing (a stale `D` from an earlier transition can mask a
//!   wrong branch), while edge-resident updates make the block-head check
//!   `G == s_j` fail *deterministically* for every transition from a block
//!   that is not a CFG predecessor — the property the exhaustive
//!   PC-corruption test in `sor-triage` pins.
//! * **CEDA** (Vemu & Abraham, *CEDA: Control-Flow Error Detection Using
//!   Assertions*, IEEE Trans. Computers 2011): two signatures per block —
//!   a node signature `sin_j` asserted at entry and a group signature
//!   shared by all predecessors of a common successor (computed here with
//!   a union-find over predecessor sets). The runtime register is updated
//!   at block entry *and* exit, so a block's outgoing identity is the
//!   group's, not its own. Faithful to CEDA's structure, this detects
//!   wrong transitions between blocks in different predecessor groups and
//!   inherits CEDA's aliasing within a group.
//!
//! Both passes check every block head and route mismatches to one shared
//! `Trap(Detected)` block per function — the same detection vocabulary as
//! SWIFT (`Outcome::Detected` in campaigns). All emitted instrumentation
//! is tagged [`ProtectionRole::Voter`], the role of checking machinery.
//!
//! Known holes shared with the published schemes (and excluded from the
//! exhaustive test): a jump *to a function entry* re-seeds the signature
//! register and restarts checking, and a jump into the *middle* of a block
//! reaches the next block head through the legal edge chain.

use crate::pass::{Pass, PassCtx, PassStats};
use crate::rewrite::Rewriter;
use sor_ir::{
    AluOp, BlockId, CmpOp, Function, Inst, Module, Operand, ProtectionRole, RegClass, Terminator,
    TrapKind, Vreg, Width,
};

/// Distinct compile-time signature for ordinal `k`: multiplication by an
/// odd constant is injective modulo 2^32, so distinct ordinals get
/// distinct positive values, and the values are spread across the word
/// (a program value colliding with one by accident is as unlikely as
/// colliding with a hash).
fn signature(k: u32) -> i64 {
    k.wrapping_add(1).wrapping_mul(0x9E37_79B1) as i64
}

/// Per-function CFG predecessor lists, from the terminators.
fn predecessors(func: &Function) -> Vec<Vec<usize>> {
    let mut preds = vec![Vec::new(); func.blocks.len()];
    for (bid, block) in func.iter_blocks() {
        match &block.term {
            Terminator::Jump(t) => preds[t.index()].push(bid.index()),
            Terminator::Branch { t, f, .. } => {
                preds[t.index()].push(bid.index());
                preds[f.index()].push(bid.index());
            }
            Terminator::Ret { .. } | Terminator::Trap(_) => {}
        }
    }
    preds
}

/// Emits `g ^= imm` (a signature transition), tagged with the current role.
fn emit_xor(rw: &mut Rewriter, g: Vreg, imm: i64) {
    rw.emit(Inst::Alu {
        op: AluOp::Xor,
        width: Width::W64,
        dst: g,
        a: Operand::reg(g),
        b: Operand::imm(imm),
    });
}

/// Emits the block-head assertion `if g != expected { trap(Detected) }`,
/// reusing one shared detection block per function.
fn emit_check(rw: &mut Rewriter, g: Vreg, expected: i64, detect: &mut Option<BlockId>) {
    rw.stats.checks += 1;
    let c = rw.vreg(RegClass::Int);
    rw.emit(Inst::Cmp {
        op: CmpOp::Ne,
        width: Width::W64,
        dst: c,
        a: Operand::reg(g),
        b: Operand::imm(expected),
    });
    let det = *detect.get_or_insert_with(|| rw.new_block());
    let fall = rw.new_block();
    rw.seal(Terminator::Branch {
        cond: c,
        t: det,
        f: fall,
    });
    rw.start_block(det);
    rw.seal(Terminator::Trap(TrapKind::Detected));
    rw.start_block(fall);
}

/// Rewrites one function under CFCSS-style edge-update signature checking.
///
/// `base` makes signatures globally distinct across the module's functions
/// so a cross-function wrong landing never finds its expected signature.
fn rewrite_cfcss_func(old: &Function, base: u32) -> (Function, crate::rewrite::RewriteStats) {
    let sig: Vec<i64> = (0..old.blocks.len() as u32)
        .map(|i| signature(base + i))
        .collect();
    let mut rw = Rewriter::new(old);
    let g = rw.vreg(RegClass::Int);
    let mut detect: Option<BlockId> = None;

    for (bid, block) in old.iter_blocks() {
        rw.start_block(bid);
        let prev = rw.set_role(ProtectionRole::Voter);
        if bid.index() == 0 {
            // The entry has no predecessor: seed the runtime signature.
            rw.emit(Inst::Mov {
                dst: g,
                src: Operand::imm(sig[0]),
            });
        } else {
            emit_check(&mut rw, g, sig[bid.index()], &mut detect);
        }
        rw.set_role(prev);
        for inst in &block.insts {
            rw.emit(inst.clone());
        }
        let prev = rw.set_role(ProtectionRole::Voter);
        match &block.term {
            // Single successor: the edge update lives in the predecessor.
            Terminator::Jump(t) => {
                emit_xor(&mut rw, g, sig[bid.index()] ^ sig[t.index()]);
                rw.seal(Terminator::Jump(*t));
            }
            // Two successors: each edge gets its own update in a split
            // block, so the transition taken determines the signature.
            Terminator::Branch { cond, t, f } => {
                let et = rw.new_block();
                let ef = rw.new_block();
                rw.seal(Terminator::Branch {
                    cond: *cond,
                    t: et,
                    f: ef,
                });
                rw.start_block(et);
                emit_xor(&mut rw, g, sig[bid.index()] ^ sig[t.index()]);
                rw.seal(Terminator::Jump(*t));
                rw.start_block(ef);
                emit_xor(&mut rw, g, sig[bid.index()] ^ sig[f.index()]);
                rw.seal(Terminator::Jump(*f));
            }
            term @ (Terminator::Ret { .. } | Terminator::Trap(_)) => rw.seal(term.clone()),
        }
        rw.set_role(prev);
    }
    let stats = rw.stats;
    (rw.finish(), stats)
}

/// Union-find over block indices, for CEDA's predecessor groups.
struct UnionFind(Vec<usize>);

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind((0..n).collect())
    }

    fn find(&mut self, i: usize) -> usize {
        if self.0[i] != i {
            let root = self.find(self.0[i]);
            self.0[i] = root;
        }
        self.0[i]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.0[ra.max(rb)] = ra.min(rb);
        }
    }
}

/// Rewrites one function under CEDA-style entry/exit signature updates.
fn rewrite_ceda_func(old: &Function, base: u32) -> (Function, crate::rewrite::RewriteStats) {
    let n = old.blocks.len();
    let preds = predecessors(old);
    // All predecessors of a common successor share one exit group.
    let mut uf = UnionFind::new(n);
    for ps in &preds {
        for w in ps.windows(2) {
            uf.union(w[0], w[1]);
        }
    }
    // Node signatures and group signatures, all globally distinct: node
    // `i` takes ordinal `base + 2i`, its group root `base + 2i + 1`.
    let sin: Vec<i64> = (0..n as u32).map(|i| signature(base + 2 * i)).collect();
    let mut gsig = vec![0i64; n];
    for (i, sig) in gsig.iter_mut().enumerate() {
        let root = uf.find(i);
        *sig = signature(base + 2 * root as u32 + 1);
    }

    let mut rw = Rewriter::new(old);
    let g = rw.vreg(RegClass::Int);
    let mut detect: Option<BlockId> = None;

    for (bid, block) in old.iter_blocks() {
        let i = bid.index();
        rw.start_block(bid);
        let prev = rw.set_role(ProtectionRole::Voter);
        if i == 0 {
            rw.emit(Inst::Mov {
                dst: g,
                src: Operand::imm(sin[0]),
            });
        } else {
            // Entry update: fold the predecessors' shared exit signature
            // into this node's, then assert it.
            let from = preds[i].first().map_or(0, |&p| gsig[p]);
            emit_xor(&mut rw, g, from ^ sin[i]);
            emit_check(&mut rw, g, sin[i], &mut detect);
        }
        rw.set_role(prev);
        for inst in &block.insts {
            rw.emit(inst.clone());
        }
        let prev = rw.set_role(ProtectionRole::Voter);
        // Exit update: leave carrying the block's group identity.
        if matches!(block.term, Terminator::Jump(_) | Terminator::Branch { .. }) {
            emit_xor(&mut rw, g, sin[i] ^ gsig[i]);
        }
        rw.seal(block.term.clone());
        rw.set_role(prev);
    }
    let stats = rw.stats;
    (rw.finish(), stats)
}

/// Which signature scheme a [`CfcPass`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CfcMode {
    /// CFCSS-style: block signatures, edge-resident XOR updates.
    Cfcss,
    /// CEDA-style: entry/exit updates with predecessor exit groups.
    Ceda,
}

/// The control-flow checking pass (see the module docs for the schemes).
pub struct CfcPass {
    mode: CfcMode,
}

impl CfcPass {
    /// CFCSS-style block-signature checking.
    pub fn cfcss() -> Self {
        CfcPass {
            mode: CfcMode::Cfcss,
        }
    }

    /// CEDA-style exec-time-update checking.
    pub fn ceda() -> Self {
        CfcPass {
            mode: CfcMode::Ceda,
        }
    }
}

impl Pass for CfcPass {
    fn name(&self) -> &'static str {
        match self.mode {
            CfcMode::Cfcss => "cfcss",
            CfcMode::Ceda => "ceda",
        }
    }

    fn run(&self, module: &mut Module, ctx: &mut PassCtx<'_>) -> PassStats {
        let mut stats = PassStats {
            pass: self.name(),
            insts_before: module.inst_count(),
            ..Default::default()
        };
        // Signature ordinals advance across functions so every block of
        // the module gets a globally-unique signature.
        let mut base = 0u32;
        for fi in 0..module.funcs.len() {
            let blocks = module.funcs[fi].blocks.len() as u32;
            let (rewritten, rw) = match self.mode {
                CfcMode::Cfcss => rewrite_cfcss_func(&module.funcs[fi], base),
                CfcMode::Ceda => rewrite_ceda_func(&module.funcs[fi], base),
            };
            base += match self.mode {
                CfcMode::Cfcss => blocks,
                CfcMode::Ceda => 2 * blocks,
            };
            stats.rewrites.absorb(rw);
            if rewritten != module.funcs[fi] {
                module.funcs[fi] = rewritten;
                ctx.cache.invalidate(fi);
                stats.mutated = true;
            }
        }
        stats.insts_after = module.inst_count();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technique::Technique;
    use crate::TransformConfig;
    use sor_ir::{verify, MemWidth, ModuleBuilder, Operand};

    /// A loopy two-function module with fan-in and fan-out.
    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("cfc");
        let g = mb.alloc_global_i32s("g", &[3, 5, 0]);

        let mut callee = mb.function("twice");
        let p = callee.param(RegClass::Int);
        let d = callee.add(Width::W64, p, p);
        callee.set_ret_count(1);
        callee.ret(&[Operand::reg(d)]);
        let callee_id = callee.finish();

        let mut f = mb.function("main");
        let base = f.movi(g as i64);
        let x = f.load(MemWidth::B4, base, 0);
        let limit = f.load(MemWidth::B4, base, 4);
        let body = f.block();
        let done = f.block();
        f.jump(body);
        f.switch_to(body);
        let t = f.call(callee_id, &[Operand::reg(x)], &[RegClass::Int]);
        let x2 = f.add(Width::W64, t[0], 1i64);
        f.mov_to(x, Operand::reg(x2));
        let c = f.cmp(CmpOp::LtS, Width::W64, x, limit);
        f.branch(c, body, done);
        f.switch_to(done);
        f.store(MemWidth::B4, base, 8, x);
        f.emit(Operand::reg(x));
        f.ret(&[]);
        let id = f.finish();
        mb.finish(id)
    }

    #[test]
    fn both_schemes_verify_and_preserve_output() {
        let m = sample();
        let p0 = sor_regalloc::lower(&m, &Default::default()).unwrap();
        let golden = sor_sim::Machine::new(&p0, &Default::default()).run(None);
        for tech in [Technique::Cfcss, Technique::Ceda, Technique::SwiftRCfcss] {
            let t = tech.apply(&m);
            verify(&t).unwrap_or_else(|e| panic!("{tech}: {e}"));
            let p = sor_regalloc::lower(&t, &Default::default()).unwrap();
            let r = sor_sim::Machine::new(&p, &Default::default()).run(None);
            assert_eq!(r.output, golden.output, "{tech} changed semantics");
            assert!(!r.output.is_empty(), "sample must emit output");
        }
    }

    #[test]
    fn checks_cover_every_non_entry_block() {
        let m = sample();
        for (pass, mode) in [(CfcPass::cfcss(), "cfcss"), (CfcPass::ceda(), "ceda")] {
            let mut out = m.clone();
            let cfg = TransformConfig::default();
            let mut ctx = PassCtx::new(&cfg, &m);
            let stats = pass.run(&mut out, &mut ctx);
            assert_eq!(stats.pass, mode);
            assert!(stats.mutated);
            let non_entry: u64 = m.funcs.iter().map(|f| f.blocks.len() as u64 - 1).sum();
            assert_eq!(
                stats.rewrites.checks, non_entry,
                "{mode}: one check per non-entry block"
            );
        }
    }

    #[test]
    fn signatures_are_distinct() {
        let seen: std::collections::HashSet<i64> = (0..4096).map(signature).collect();
        assert_eq!(seen.len(), 4096);
        assert!(seen.iter().all(|&s| s > 0), "signatures must be positive");
    }

    #[test]
    fn cfc_instrumentation_is_voter_tagged() {
        let m = sample();
        let t = Technique::Cfcss.apply(&m);
        let roles = t.funcs[1].roles.as_ref().expect("roles attached");
        let tagged: usize = roles
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|r| **r == ProtectionRole::Voter)
            .count();
        assert!(tagged > 0, "checks and updates carry the Voter role");
    }
}
