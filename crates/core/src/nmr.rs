//! The shared duplication engine behind SWIFT (detect) and SWIFT-R (vote).
//!
//! Both techniques intertwine redundant copies of the integer computation
//! with the original instruction stream and synchronize at the points where
//! values can escape the protection domain: load/store addresses, store
//! values, branch conditions, call arguments and return values (paper §2.2,
//! §3.1). SWIFT keeps one copy and branches to a detection trap on mismatch;
//! SWIFT-R keeps two copies and repairs by majority vote.

use crate::config::TransformConfig;
use crate::rewrite::{Rewriter, ShadowMap};
use sor_ir::{
    BlockId, CmpOp, Function, Inst, Operand, ProbeEvent, ProtectionRole, Terminator, TrapKind,
    Vreg, Width,
};

/// Emits the SWIFT-R majority vote (paper Figure 3's `majority(v, v', v'')`):
///
/// ```text
/// if v != v' { v = v''; v' = v'' }  // v'' is the majority
/// ```
///
/// Exact under the single-event-upset model: at most one copy is ever
/// wrong, so if `v == v'` both are correct and execution proceeds — a
/// corrupted `v''` is harmless because it is only ever *consulted* on a
/// mismatch, which (with the one allowed fault already spent on `v''`
/// itself) can no longer occur. Fault-free dynamic cost: compare + branch.
pub(crate) fn emit_vote(rw: &mut Rewriter, v: Vreg, v1: Vreg, v2: Vreg) {
    rw.stats.votes += 1;
    let prev = rw.set_role(ProtectionRole::Voter);
    let c = rw.vreg(sor_ir::RegClass::Int);
    rw.emit(Inst::Cmp {
        op: CmpOp::Ne,
        width: Width::W64,
        dst: c,
        a: Operand::reg(v),
        b: Operand::reg(v1),
    });
    let (repair, fall) = rw.branch_off(c);
    rw.start_block(repair);
    rw.emit(Inst::Mov {
        dst: v,
        src: Operand::reg(v2),
    });
    rw.emit(Inst::Mov {
        dst: v1,
        src: Operand::reg(v2),
    });
    rw.emit(Inst::Probe(ProbeEvent::VoteRepair));
    rw.seal(Terminator::Jump(fall));
    rw.start_block(fall);
    rw.set_role(prev);
}

/// Builds the duplicate of a pure computational instruction with every
/// integer register redirected into the shadow space `sm`. An `assume`
/// duplicates as a plain move: the range fact belongs to the original chain.
pub(crate) fn dup_into(rw: &mut Rewriter, sm: &mut ShadowMap, inst: &Inst) -> Inst {
    let mut dup = inst.clone();
    if let Inst::Assume { dst, src, .. } = inst {
        dup = Inst::Mov {
            dst: *dst,
            src: Operand::reg(*src),
        };
    }
    dup.map_uses(|r| if r.is_int() { sm.shadow(rw, r) } else { r });
    dup.map_defs(|r| if r.is_int() { sm.shadow(rw, r) } else { r });
    dup
}

/// What to do when copies disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NmrMode {
    /// SWIFT: one shadow, mismatch branches to a `Trap(Detected)` block.
    Detect,
    /// SWIFT-R: two shadows, majority vote repairs the odd one out.
    Vote,
}

struct Pass<'c> {
    cfg: &'c TransformConfig,
    mode: NmrMode,
    s1: ShadowMap,
    s2: ShadowMap,
    detect: Option<BlockId>,
}

/// Rewrites one function under SWIFT (`Detect`) or SWIFT-R (`Vote`); the
/// `NmrApplyPass` body.
pub(crate) fn rewrite_nmr_func(
    old: &Function,
    cfg: &TransformConfig,
    mode: NmrMode,
) -> (Function, crate::rewrite::RewriteStats) {
    let mut rw = Rewriter::new(old);
    let mut pass = Pass {
        cfg,
        mode,
        s1: ShadowMap::new(),
        s2: ShadowMap::new(),
        detect: None,
    };

    for (bid, block) in old.iter_blocks() {
        rw.start_block(bid);
        if bid.index() == 0 {
            // Parameters arrive as single copies; replicating them here is
            // the same unavoidable copy window as after loads (§3.2 case 2).
            for p in old.params.clone() {
                if p.is_int() {
                    pass.replicate(&mut rw, p);
                }
            }
        }
        for inst in &block.insts {
            pass.rewrite_inst(&mut rw, inst);
        }
        pass.rewrite_term(&mut rw, &block.term);
    }
    let stats = rw.stats;
    (rw.finish(), stats)
}

impl Pass<'_> {
    /// Copies `v` into its shadow(s): the post-load / post-call sync.
    fn replicate(&mut self, rw: &mut Rewriter, v: Vreg) {
        let s1 = self.s1.shadow(rw, v);
        let prev = rw.set_role(ProtectionRole::Redundant { copy: 1 });
        rw.emit(Inst::Mov {
            dst: s1,
            src: Operand::reg(v),
        });
        if self.mode == NmrMode::Vote {
            let s2 = self.s2.shadow(rw, v);
            rw.set_role(ProtectionRole::Redundant { copy: 2 });
            rw.emit(Inst::Mov {
                dst: s2,
                src: Operand::reg(v),
            });
        }
        rw.set_role(prev);
    }

    /// Emits the synchronization point for `v`: a detection check or a
    /// majority vote, depending on mode.
    fn sync(&mut self, rw: &mut Rewriter, v: Vreg) {
        match self.mode {
            NmrMode::Detect => self.check(rw, v),
            NmrMode::Vote => self.vote(rw, v),
        }
    }

    /// SWIFT check: `br faultDet, v != v'`.
    fn check(&mut self, rw: &mut Rewriter, v: Vreg) {
        rw.stats.checks += 1;
        let s = self.s1.shadow(rw, v);
        let prev = rw.set_role(ProtectionRole::Voter);
        let c = rw.vreg(sor_ir::RegClass::Int);
        rw.emit(Inst::Cmp {
            op: CmpOp::Ne,
            width: Width::W64,
            dst: c,
            a: Operand::reg(v),
            b: Operand::reg(s),
        });
        let det = *self.detect.get_or_insert_with(|| {
            let b = rw.new_block();
            // The block is sealed directly; emission never enters it.
            b
        });
        let fall = rw.new_block();
        rw.seal(Terminator::Branch {
            cond: c,
            t: det,
            f: fall,
        });
        rw.start_block(det);
        rw.seal(Terminator::Trap(TrapKind::Detected));
        rw.start_block(fall);
        rw.set_role(prev);
    }

    fn vote(&mut self, rw: &mut Rewriter, v: Vreg) {
        let v1 = self.s1.shadow(rw, v);
        let v2 = self.s2.shadow(rw, v);
        emit_vote(rw, v, v1, v2);
    }

    fn sync_operand(&mut self, rw: &mut Rewriter, o: Operand) {
        if let Operand::Reg(r) = o {
            if r.is_int() {
                self.sync(rw, r);
            }
        }
    }

    fn dup_compute(&mut self, rw: &mut Rewriter, inst: &Inst) {
        let d1 = dup_into(rw, &mut self.s1, inst);
        let prev = rw.set_role(ProtectionRole::Redundant { copy: 1 });
        rw.emit(d1);
        if self.mode == NmrMode::Vote {
            let d2 = dup_into(rw, &mut self.s2, inst);
            rw.set_role(ProtectionRole::Redundant { copy: 2 });
            rw.emit(d2);
        }
        rw.set_role(prev);
    }

    fn rewrite_inst(&mut self, rw: &mut Rewriter, inst: &Inst) {
        match inst {
            // Pure integer computation: emit original + shadow copies.
            Inst::Alu { .. }
            | Inst::Cmp { .. }
            | Inst::Mov { .. }
            | Inst::Select { .. }
            | Inst::Assume { .. }
            // Integer values entering from the FP domain are re-computed
            // redundantly from the (unprotected) FP source.
            | Inst::FCmp { .. }
            | Inst::CvtFI { .. } => {
                rw.emit(inst.clone());
                self.dup_compute(rw, inst);
            }
            // Loads: verify the address, perform the load once (it may be
            // uncacheable I/O — §2.2), then replicate the result.
            Inst::Load { dst, base, .. } => {
                self.sync(rw, *base);
                rw.emit(inst.clone());
                self.replicate(rw, *dst);
            }
            Inst::FLoad { base, .. } => {
                self.sync(rw, *base);
                rw.emit(inst.clone());
            }
            // Stores: verify address and (optionally) data, store once.
            Inst::Store { base, src, .. } => {
                self.sync(rw, *base);
                if self.cfg.check_store_values {
                    self.sync_operand(rw, *src);
                }
                rw.emit(inst.clone());
            }
            Inst::FStore { base, .. } => {
                self.sync(rw, *base);
                rw.emit(inst.clone());
            }
            // Calls: verify register inputs, call once, replicate returns.
            Inst::Call { args, rets, .. } => {
                if self.cfg.check_call_args {
                    for a in args.clone() {
                        self.sync_operand(rw, a);
                    }
                }
                rw.emit(inst.clone());
                for r in rets.clone() {
                    if r.is_int() {
                        self.replicate(rw, r);
                    }
                }
            }
            // Unprotected FP computation and instrumentation pass through.
            Inst::Fpu { .. }
            | Inst::FMovImm { .. }
            | Inst::FMov { .. }
            | Inst::CvtIF { .. }
            | Inst::Probe(_) => {
                let prev = rw.set_role(ProtectionRole::Unprotected);
                rw.emit(inst.clone());
                rw.set_role(prev);
            }
        }
    }

    fn rewrite_term(&mut self, rw: &mut Rewriter, term: &Terminator) {
        match term {
            Terminator::Branch { cond, .. } => {
                if self.cfg.check_branches {
                    self.sync(rw, *cond);
                }
            }
            Terminator::Ret { vals } => {
                if self.cfg.check_ret_vals {
                    for v in vals.clone() {
                        self.sync_operand(rw, v);
                    }
                }
            }
            Terminator::Jump(_) | Terminator::Trap(_) => {}
        }
        rw.seal(term.clone());
    }
}
