//! Transform configuration: check-placement density knobs.
//!
//! The paper fixes one placement policy (checks before loads, stores,
//! branches and calls); the knobs here allow the ablation benches to
//! quantify what each class of check buys.

/// Where checks/votes are inserted and what MASK enforces.
///
/// Hashable so that it can key the harness's shared artifact store: two
/// campaigns with the same (workload, technique, transform, lower)
/// coordinates share one transformed-and-lowered program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TransformConfig {
    /// Check/vote store *values* (addresses are always checked).
    pub check_store_values: bool,
    /// Check/vote branch condition sources.
    pub check_branches: bool,
    /// Check/vote register arguments of calls.
    pub check_call_args: bool,
    /// Check/vote returned values.
    pub check_ret_vals: bool,
    /// MASK: re-enforce invariants on loop-carried values at loop headers.
    pub mask_loop_carried: bool,
    /// MASK: mask branch conditions down to their possible bits.
    pub mask_branch_conds: bool,
    /// MASK extension (§5's closing remark): also enforce provably-*one*
    /// bits with `or` instructions. Off by default — the paper only
    /// evaluates `and`-enforcement of known-zero bits.
    pub mask_known_ones: bool,
}

impl Default for TransformConfig {
    fn default() -> Self {
        TransformConfig {
            check_store_values: true,
            check_branches: true,
            check_call_args: true,
            check_ret_vals: true,
            mask_loop_carried: true,
            mask_branch_conds: true,
            mask_known_ones: false,
        }
    }
}

impl TransformConfig {
    /// The paper's policy (everything on) — same as `default()`.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Minimal policy: only load/store addresses are protected. Used by the
    /// check-density ablation.
    pub fn addresses_only() -> Self {
        TransformConfig {
            check_store_values: false,
            check_branches: false,
            check_call_args: false,
            check_ret_vals: false,
            mask_loop_carried: true,
            mask_branch_conds: false,
            mask_known_ones: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_checks_everything() {
        let c = TransformConfig::paper();
        assert!(c.check_store_values && c.check_branches && c.check_call_args);
    }

    #[test]
    fn addresses_only_is_sparser() {
        let c = TransformConfig::addresses_only();
        assert!(!c.check_store_values && !c.check_branches);
    }
}
