//! The technique selector used by campaigns, benches and examples.

use crate::config::TransformConfig;
use crate::pass::run_technique;
use sor_ir::Module;
use std::fmt;

/// One point in the paper's reliability/performance trade-off space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Technique {
    /// No fault tolerance (the baseline both figures normalize against).
    Noft,
    /// MASK only (§5): invariant enforcement, no redundancy.
    Mask,
    /// TRUMP only (§4): AN-code dual redundancy with inferred recovery.
    Trump,
    /// TRUMP/MASK hybrid (§6.2).
    TrumpMask,
    /// TRUMP/SWIFT-R hybrid (§6.1).
    TrumpSwiftR,
    /// SWIFT-R (§3): software TMR with majority voting.
    SwiftR,
    /// SWIFT (§2.2): detection only — not part of Figure 8/9, kept as the
    /// detection baseline for the extension experiments.
    Swift,
    /// CFCSS-style block-signature control-flow checking (detection only,
    /// control-flow faults — an extension beyond the paper's register
    /// techniques; see `sor_core::cfc`).
    Cfcss,
    /// CEDA-style exec-time-update control-flow checking (detection only).
    Ceda,
    /// SWIFT-R register recovery composed with CFCSS control-flow
    /// detection: votes repair data faults, signatures catch wild jumps.
    SwiftRCfcss,
}

impl Technique {
    /// The techniques of the Figure 8/Figure 9 matrix: the paper's six in
    /// its order (N, M, T, K, R, S), extended with the control-flow
    /// checking cells (C, F). New entries are appended so the seed-derived
    /// fault draws of the original cells stay bit-identical.
    pub const FIGURE8: [Technique; 8] = [
        Technique::Noft,
        Technique::Mask,
        Technique::Trump,
        Technique::TrumpMask,
        Technique::TrumpSwiftR,
        Technique::SwiftR,
        Technique::Cfcss,
        Technique::SwiftRCfcss,
    ];

    /// Every technique including the detection-only baselines.
    pub const ALL: [Technique; 10] = [
        Technique::Noft,
        Technique::Mask,
        Technique::Trump,
        Technique::TrumpMask,
        Technique::TrumpSwiftR,
        Technique::SwiftR,
        Technique::Swift,
        Technique::Cfcss,
        Technique::Ceda,
        Technique::SwiftRCfcss,
    ];

    /// Full name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Technique::Noft => "NOFT",
            Technique::Mask => "MASK",
            Technique::Trump => "TRUMP",
            Technique::TrumpMask => "TRUMP/MASK",
            Technique::TrumpSwiftR => "TRUMP/SWIFT-R",
            Technique::SwiftR => "SWIFT-R",
            Technique::Swift => "SWIFT",
            Technique::Cfcss => "CFCSS",
            Technique::Ceda => "CEDA",
            Technique::SwiftRCfcss => "SWIFT-R/CFCSS",
        }
    }

    /// The single-letter code from Figure 8's caption.
    pub fn letter(self) -> char {
        match self {
            Technique::Noft => 'N',
            Technique::Mask => 'M',
            Technique::Trump => 'T',
            Technique::TrumpMask => 'K',
            Technique::TrumpSwiftR => 'R',
            Technique::SwiftR => 'S',
            Technique::Swift => 'D',
            Technique::Cfcss => 'C',
            Technique::Ceda => 'E',
            Technique::SwiftRCfcss => 'F',
        }
    }

    /// Applies the technique with the paper's check-placement policy.
    pub fn apply(self, module: &Module) -> Module {
        self.apply_with(module, &TransformConfig::default())
    }

    /// Applies the technique with an explicit configuration, by running its
    /// [`crate::Pipeline`] (without between-pass verification).
    pub fn apply_with(self, module: &Module, cfg: &TransformConfig) -> Module {
        run_technique(self, module, cfg)
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_ir::{verify, MemWidth, ModuleBuilder, Operand, Width};

    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.alloc_global_i32s("g", &[11, 22, 33]);
        let mut f = mb.function("main");
        let base = f.movi(g as i64);
        let x = f.load(MemWidth::B4, base, 0);
        let y = f.load(MemWidth::B4, base, 4);
        let s = f.add(Width::W64, x, y);
        let l = f.xor(Width::W64, s, 0x5Ai64);
        f.store(MemWidth::B4, base, 8, l);
        f.emit(Operand::reg(l));
        f.ret(&[]);
        let id = f.finish();
        mb.finish(id)
    }

    #[test]
    fn every_technique_verifies_and_preserves_output() {
        let m = sample();
        let p0 = sor_regalloc::lower(&m, &Default::default()).unwrap();
        let golden = sor_sim::Machine::new(&p0, &Default::default()).run(None);
        for tech in Technique::ALL {
            let t = tech.apply(&m);
            verify(&t).unwrap_or_else(|e| panic!("{tech}: {e}"));
            let p = sor_regalloc::lower(&t, &Default::default()).unwrap();
            let r = sor_sim::Machine::new(&p, &Default::default()).run(None);
            assert_eq!(r.output, golden.output, "{tech} changed semantics");
        }
    }

    #[test]
    fn ordering_of_static_overhead() {
        // NOFT ≤ MASK ≪ {TRUMP, SWIFT, SWIFT-R}. TRUMP's *static* size can
        // exceed SWIFT-R's (its check+recovery sequence is longer than a
        // vote, §7.2), so the redundancy techniques are only compared
        // against the light ones here; dynamic cost ordering is asserted by
        // the harness perf tests.
        let m = sample();
        let size = |t: Technique| t.apply(&m).inst_count();
        assert!(size(Technique::Noft) <= size(Technique::Mask));
        assert!(size(Technique::Mask) < size(Technique::Trump));
        assert!(size(Technique::Mask) < size(Technique::SwiftR));
        assert!(size(Technique::Swift) < size(Technique::SwiftR));
    }

    #[test]
    fn names_and_letters_are_unique() {
        let mut names = std::collections::HashSet::new();
        let mut letters = std::collections::HashSet::new();
        for t in Technique::ALL {
            assert!(names.insert(t.name()));
            assert!(letters.insert(t.letter()));
        }
    }
}
