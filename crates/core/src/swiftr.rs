//! SWIFT-R: triple-modular redundancy in software with majority-vote
//! recovery (paper §3).

use crate::config::TransformConfig;
use sor_ir::Module;

/// Applies the SWIFT-R recovery transform: integer computation is
/// *triplicated* (original + two shadows) and majority votes before loads,
/// stores, branches, calls and returns repair any single corrupted copy
/// in place, letting the program run to a correct completion.
///
/// ```
/// use sor_core::{apply_swiftr, TransformConfig};
/// use sor_ir::{ModuleBuilder, Operand, Width};
///
/// let mut mb = ModuleBuilder::new("demo");
/// let mut f = mb.function("main");
/// let x = f.movi(40);
/// let y = f.add(Width::W64, x, 2i64);
/// f.emit(Operand::reg(y));
/// f.ret(&[]);
/// let id = f.finish();
/// let module = mb.finish(id);
///
/// let hardened = apply_swiftr(&module, &TransformConfig::default());
/// // Triplication: the add now exists three times.
/// assert!(hardened.inst_count() > module.inst_count() * 2);
/// assert!(sor_ir::verify(&hardened).is_ok());
/// ```
pub fn apply_swiftr(module: &Module, cfg: &TransformConfig) -> Module {
    crate::pass::run_technique(crate::Technique::SwiftR, module, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_ir::{verify, MemWidth, ModuleBuilder, Operand, ProbeEvent, Width};
    use sor_regalloc::{lower, LowerConfig};
    use sor_sim::{FaultSpec, Machine, MachineConfig, Outcome, Runner};

    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.alloc_global_u64s("g", &[7, 0]);
        let mut f = mb.function("main");
        let base = f.movi(g as i64);
        let x = f.load(MemWidth::B8, base, 0);
        let mut acc = f.movi(0);
        // A dependence chain long enough that most faults land inside it.
        for i in 0..20 {
            let t = f.add(Width::W64, acc, x);
            let t2 = f.xor(Width::W64, t, i as i64);
            acc = t2;
        }
        f.store(MemWidth::B8, base, 8, acc);
        f.emit(Operand::reg(acc));
        f.ret(&[]);
        let id = f.finish();
        mb.finish(id)
    }

    #[test]
    fn output_verifies_and_triplicates() {
        let m = sample();
        let t = apply_swiftr(&m, &TransformConfig::default());
        verify(&t).expect("transformed module verifies");
        // Triplication: computation instructions appear three times.
        assert!(t.inst_count() > m.inst_count() * 2);
    }

    #[test]
    fn semantics_preserved_without_faults() {
        let m = sample();
        let t = apply_swiftr(&m, &TransformConfig::default());
        let p0 = lower(&m, &LowerConfig::default()).unwrap();
        let p1 = lower(&t, &LowerConfig::default()).unwrap();
        let r0 = Machine::new(&p0, &MachineConfig::default()).run(None);
        let r1 = Machine::new(&p1, &MachineConfig::default()).run(None);
        assert_eq!(r0.output, r1.output);
        assert_eq!(r1.probes.vote_repairs, 0, "no repairs without faults");
    }

    #[test]
    fn recovers_from_every_fault_in_the_protected_chain() {
        // Inject into the registers the original accumulator chain uses at
        // many points in time: SWIFT-R must vote the damage away.
        let m = sample();
        let t = apply_swiftr(&m, &TransformConfig::default());
        let p = lower(&t, &LowerConfig::default()).unwrap();
        let runner = Runner::new(&p, &MachineConfig::default());
        let len = runner.golden().dyn_instrs;
        let mut repaired = 0u64;
        let mut not_unace = 0u64;
        for at in (0..len).step_by(7) {
            for reg in [0u8, 2, 3, 4, 5] {
                let (outcome, res) = runner.run_fault(FaultSpec::new(at, reg, 13));
                if outcome != Outcome::UnAce {
                    not_unace += 1;
                }
                repaired += res.probes.vote_repairs;
            }
        }
        assert!(repaired > 0, "some votes must have repaired");
        // The windows of vulnerability are small; the vast majority of these
        // injections must be masked or repaired.
        let total = (len / 7 + 1) * 5;
        assert!(
            (not_unace as f64) < total as f64 * 0.05,
            "{not_unace}/{total} injections were not unACE"
        );
    }

    #[test]
    fn vote_repair_probe_fires_on_targeted_hit() {
        let m = sample();
        let t = apply_swiftr(&m, &TransformConfig::default());
        let p = lower(&t, &LowerConfig::default()).unwrap();
        let runner = Runner::new(&p, &MachineConfig::default());
        let len = runner.golden().dyn_instrs;
        // Sweep until some injection triggers an actual repair probe.
        let mut hit = false;
        'outer: for at in 0..len.min(400) {
            for reg in sor_sim::FaultSpec::injectable_regs().take(8) {
                let (_, res) = runner.run_fault(FaultSpec::new(at, reg, 3));
                if res.probes.vote_repairs > 0 {
                    hit = true;
                    break 'outer;
                }
            }
        }
        assert!(
            hit,
            "no injection ever triggered {:?}",
            ProbeEvent::VoteRepair
        );
    }
}
