//! Soundness property tests for the dataflow analyses.
//!
//! TRUMP's correctness rests on [`Ranges`] never under-approximating (a
//! value escaping its interval would let the AN shadow wrap and recover the
//! *wrong* value), and MASK's on [`KnownBits`] never claiming a live bit is
//! dead (the mask would then destroy real data). Both are checked here by
//! running randomly generated straight-line programs and comparing every
//! executed value against the static facts.

use proptest::prelude::*;
use sor_analysis::{KnownBits, Ranges};
use sor_ir::{AluOp, CmpOp, MemWidth, Module, ModuleBuilder, Operand, Vreg, Width};
use sor_regalloc::{lower, LowerConfig};
use sor_sim::{Machine, MachineConfig, RunStatus};

#[derive(Debug, Clone)]
enum Op {
    Alu(AluOp, bool, usize, usize, i64), // (op, w64, a, b, imm-or-reg selector)
    Cmp(CmpOp, usize, usize),
    Select(usize, usize, usize),
    Assume(usize, u64),
    Load(bool, usize), // (signed, slot)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            prop::sample::select(AluOp::ALL.to_vec()),
            prop::bool::ANY,
            0usize..12,
            0usize..12,
            -300i64..300
        )
            .prop_map(|(o, w, a, b, i)| Op::Alu(o, w, a, b, i)),
        (
            prop::sample::select(CmpOp::ALL.to_vec()),
            0usize..12,
            0usize..12
        )
            .prop_map(|(o, a, b)| Op::Cmp(o, a, b)),
        (0usize..12, 0usize..12, 0usize..12).prop_map(|(c, a, b)| Op::Select(c, a, b)),
        (0usize..12, 1u64..100_000).prop_map(|(v, hi)| Op::Assume(v, hi)),
        (prop::bool::ANY, 0usize..4).prop_map(|(s, slot)| Op::Load(s, slot)),
    ]
}

/// Builds a program that computes the op list and then *emits every value*,
/// so the simulator reveals each value for comparison with the analyses.
fn build(seeds: &[i64], mem: &[u64], ops: &[Op]) -> (Module, Vec<Vreg>) {
    let mut mb = ModuleBuilder::new("sound");
    let g = mb.alloc_global_u64s("mem", mem);
    let mut f = mb.function("main");
    let base = f.movi(g as i64);
    let mut vals: Vec<Vreg> = seeds.iter().map(|s| f.movi(*s)).collect();
    let pick = |vals: &[Vreg], i: usize| vals[i % vals.len()];
    for op in ops {
        let v = match op {
            Op::Alu(o, w64, a, b, imm) => {
                let width = if *w64 { Width::W64 } else { Width::W32 };
                let bop: Operand = if *imm % 2 == 0 {
                    Operand::imm(*imm)
                } else {
                    Operand::reg(pick(&vals, *b))
                };
                f.alu(*o, width, pick(&vals, *a), bop)
            }
            Op::Cmp(o, a, b) => f.cmp(*o, Width::W64, pick(&vals, *a), pick(&vals, *b)),
            Op::Select(c, a, b) => {
                let cond = pick(&vals, *c);
                f.select(cond, pick(&vals, *a), pick(&vals, *b))
            }
            Op::Assume(v, hi) => {
                let m = f.alu(
                    AluOp::RemU,
                    Width::W64,
                    pick(&vals, *v),
                    (*hi as i64).max(1),
                );
                f.assume(m, 0, hi - 1)
            }
            Op::Load(signed, slot) => {
                if *signed {
                    f.loads(MemWidth::B4, base, (*slot as i64) * 8)
                } else {
                    f.load(MemWidth::B8, base, (*slot as i64) * 8)
                }
            }
        };
        vals.push(v);
    }
    for v in &vals {
        f.emit(Operand::reg(*v));
    }
    f.ret(&[]);
    let id = f.finish();
    (mb.finish(id), vals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn analyses_never_underapproximate(
        seeds in prop::collection::vec(-500i64..500, 2..6),
        mem in prop::collection::vec(0u64..u64::MAX, 4),
        ops in prop::collection::vec(op_strategy(), 1..30),
    ) {
        let (module, vals) = build(&seeds, &mem, &ops);
        prop_assert!(sor_ir::verify(&module).is_ok());
        let func = &module.funcs[0];
        let ranges = Ranges::new(func);
        let kb = KnownBits::new(func);

        let p = lower(&module, &LowerConfig::default()).unwrap();
        let r = Machine::new(&p, &MachineConfig::default()).run(None);
        // Division faults abort the run; nothing to compare then.
        prop_assume!(r.status == RunStatus::Completed);
        prop_assert_eq!(r.output.len(), vals.len());

        for (v, observed) in vals.iter().zip(&r.output) {
            let iv = ranges.range(*v);
            prop_assert!(
                iv.lo <= *observed && *observed <= iv.hi,
                "range violated for {}: {} not in [{}, {}]",
                v, observed, iv.lo, iv.hi
            );
            let po = kb.possible_ones(*v);
            prop_assert!(
                observed & !po == 0,
                "known-zero bit set in {}: value {:#x}, possible-ones {:#x}",
                v, observed, po
            );
            let ko = kb.known_ones(*v);
            prop_assert!(
                observed & ko == ko,
                "known-one bit clear in {}: value {:#x}, known-ones {:#x}",
                v, observed, ko
            );
        }
    }
}
