//! Soundness property tests for the dataflow analyses.
//!
//! TRUMP's correctness rests on [`Ranges`] never under-approximating (a
//! value escaping its interval would let the AN shadow wrap and recover the
//! *wrong* value), and MASK's on [`KnownBits`] never claiming a live bit is
//! dead (the mask would then destroy real data). Both are checked here by
//! running randomly generated straight-line programs and comparing every
//! executed value against the static facts.

use sor_analysis::{KnownBits, Ranges};
use sor_ir::{AluOp, CmpOp, MemWidth, Module, ModuleBuilder, Operand, Vreg, Width};
use sor_regalloc::{lower, LowerConfig};
use sor_rng::SmallRng;
use sor_sim::{Machine, MachineConfig, RunStatus};

#[derive(Debug, Clone)]
enum Op {
    Alu(AluOp, bool, usize, usize, i64), // (op, w64, a, b, imm-or-reg selector)
    Cmp(CmpOp, usize, usize),
    Select(usize, usize, usize),
    Assume(usize, u64),
    Load(bool, usize), // (signed, slot)
}

fn random_op(rng: &mut SmallRng) -> Op {
    match rng.gen_range(0, 5) {
        0 => Op::Alu(
            *rng.choose(&AluOp::ALL),
            rng.gen_bool(),
            rng.gen_range(0, 12) as usize,
            rng.gen_range(0, 12) as usize,
            rng.gen_range_i64(-300, 300),
        ),
        1 => Op::Cmp(
            *rng.choose(&CmpOp::ALL),
            rng.gen_range(0, 12) as usize,
            rng.gen_range(0, 12) as usize,
        ),
        2 => Op::Select(
            rng.gen_range(0, 12) as usize,
            rng.gen_range(0, 12) as usize,
            rng.gen_range(0, 12) as usize,
        ),
        3 => Op::Assume(rng.gen_range(0, 12) as usize, rng.gen_range(1, 100_000)),
        _ => Op::Load(rng.gen_bool(), rng.gen_range(0, 4) as usize),
    }
}

/// Builds a program that computes the op list and then *emits every value*,
/// so the simulator reveals each value for comparison with the analyses.
fn build(seeds: &[i64], mem: &[u64], ops: &[Op]) -> (Module, Vec<Vreg>) {
    let mut mb = ModuleBuilder::new("sound");
    let g = mb.alloc_global_u64s("mem", mem);
    let mut f = mb.function("main");
    let base = f.movi(g as i64);
    let mut vals: Vec<Vreg> = seeds.iter().map(|s| f.movi(*s)).collect();
    let pick = |vals: &[Vreg], i: usize| vals[i % vals.len()];
    for op in ops {
        let v = match op {
            Op::Alu(o, w64, a, b, imm) => {
                let width = if *w64 { Width::W64 } else { Width::W32 };
                let bop: Operand = if *imm % 2 == 0 {
                    Operand::imm(*imm)
                } else {
                    Operand::reg(pick(&vals, *b))
                };
                f.alu(*o, width, pick(&vals, *a), bop)
            }
            Op::Cmp(o, a, b) => f.cmp(*o, Width::W64, pick(&vals, *a), pick(&vals, *b)),
            Op::Select(c, a, b) => {
                let cond = pick(&vals, *c);
                f.select(cond, pick(&vals, *a), pick(&vals, *b))
            }
            Op::Assume(v, hi) => {
                let m = f.alu(
                    AluOp::RemU,
                    Width::W64,
                    pick(&vals, *v),
                    (*hi as i64).max(1),
                );
                f.assume(m, 0, hi - 1)
            }
            Op::Load(signed, slot) => {
                if *signed {
                    f.loads(MemWidth::B4, base, (*slot as i64) * 8)
                } else {
                    f.load(MemWidth::B8, base, (*slot as i64) * 8)
                }
            }
        };
        vals.push(v);
    }
    for v in &vals {
        f.emit(Operand::reg(*v));
    }
    f.ret(&[]);
    let id = f.finish();
    (mb.finish(id), vals)
}

/// Seeded random sweep over the in-tree [`sor_rng::SmallRng`]; the case
/// index in a failure message reproduces the program exactly.
#[test]
fn analyses_never_underapproximate() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x5007ED ^ (case << 24));
        let n_seeds = rng.gen_range(2, 6);
        let seeds: Vec<i64> = (0..n_seeds).map(|_| rng.gen_range_i64(-500, 500)).collect();
        let mem: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let n_ops = rng.gen_range(1, 30);
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng)).collect();

        let (module, vals) = build(&seeds, &mem, &ops);
        assert!(sor_ir::verify(&module).is_ok(), "case {case}");
        let func = &module.funcs[0];
        let ranges = Ranges::new(func);
        let kb = KnownBits::new(func);

        let p = lower(&module, &LowerConfig::default()).unwrap();
        let r = Machine::new(&p, &MachineConfig::default()).run(None);
        // Division faults abort the run; nothing to compare then.
        if r.status != RunStatus::Completed {
            continue;
        }
        assert_eq!(r.output.len(), vals.len(), "case {case}");

        for (v, observed) in vals.iter().zip(&r.output) {
            let iv = ranges.range(*v);
            assert!(
                iv.lo <= *observed && *observed <= iv.hi,
                "case {case}: range violated for {}: {} not in [{}, {}]",
                v,
                observed,
                iv.lo,
                iv.hi
            );
            let po = kb.possible_ones(*v);
            assert!(
                observed & !po == 0,
                "case {case}: known-zero bit set in {}: value {:#x}, possible-ones {:#x}",
                v,
                observed,
                po
            );
            let ko = kb.known_ones(*v);
            assert!(
                observed & ko == ko,
                "case {case}: known-one bit clear in {}: value {:#x}, known-ones {:#x}",
                v,
                observed,
                ko
            );
        }
    }
}
