//! Known-bits analysis: which bits of each integer value can possibly be one.
//!
//! This is the invariant source for the MASK transform (paper §5): if the
//! analysis proves the high bits of a value are always zero, MASK re-enforces
//! that fact at runtime with an `and`, so a fault flipping any provably-zero
//! bit is masked out before it can change program behavior.
//!
//! The analysis is flow-insensitive over virtual registers: each register's
//! "possible ones" mask is the join (bitwise or) of the transfer function of
//! every definition, iterated to a fixpoint. Flow-insensitivity is sound and
//! matches what a backend pass can cheaply compute pre-regalloc.

use sor_ir::{AluOp, Function, Inst, MemWidth, Operand, RegClass, Vreg};

/// All bits at and below the most significant set bit of `x`.
fn fill(x: u64) -> u64 {
    if x == 0 {
        0
    } else {
        let msb = 63 - x.leading_zeros() as u64;
        if msb == 63 {
            u64::MAX
        } else {
            (1u64 << (msb + 1)) - 1
        }
    }
}

/// Possible-ones and known-ones masks per integer virtual register.
#[derive(Debug, Clone)]
pub struct KnownBits {
    po: Vec<u64>,
    ko: Vec<u64>,
}

impl KnownBits {
    /// Runs the analysis on `func`.
    pub fn new(func: &Function) -> Self {
        let n = func.int_vreg_count() as usize;
        let mut po = vec![0u64; n];
        // Parameters arrive unconstrained.
        for p in &func.params {
            if p.is_int() {
                po[p.index() as usize] = u64::MAX;
            }
        }
        // Iterate transfer functions to a fixpoint. Joins only grow masks,
        // and masks are bounded, so this terminates.
        loop {
            let mut changed = false;
            for block in &func.blocks {
                for inst in &block.insts {
                    for (dst, mask) in transfer(inst, &po) {
                        let slot = &mut po[dst.index() as usize];
                        let joined = *slot | mask;
                        if joined != *slot {
                            *slot = joined;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Known-ones: the dual lattice (start optimistic at all-ones,
        // intersect per definition, monotone decreasing). Supports the §5
        // extension of enforcing known-one bits with `or` instructions.
        let mut ko = vec![u64::MAX; n];
        for p in &func.params {
            if p.is_int() {
                ko[p.index() as usize] = 0;
            }
        }
        loop {
            let mut changed = false;
            for block in &func.blocks {
                for inst in &block.insts {
                    for (dst, mask) in transfer_ones(inst, &po, &ko) {
                        let slot = &mut ko[dst.index() as usize];
                        let met = *slot & mask;
                        if met != *slot {
                            *slot = met;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // A register with no definitions reads as zero.
        for (k, p) in ko.iter_mut().zip(&po) {
            if *p == 0 {
                *k = 0;
            }
            // Consistency: a known-one bit must be a possible-one bit.
            *k &= *p;
        }
        KnownBits { po, ko }
    }

    /// Bits of `v` that may be one. Bits outside the mask are provably zero.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an integer register of the analyzed function.
    pub fn possible_ones(&self, v: Vreg) -> u64 {
        assert_eq!(v.class(), RegClass::Int, "known bits are integer-only");
        self.po[v.index() as usize]
    }

    /// Bits of `v` that are provably zero.
    pub fn known_zeros(&self, v: Vreg) -> u64 {
        !self.possible_ones(v)
    }

    /// Bits of `v` that are provably one (the §5 `or`-enforcement
    /// extension's invariant source).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an integer register of the analyzed function.
    pub fn known_ones(&self, v: Vreg) -> u64 {
        assert_eq!(v.class(), RegClass::Int, "known bits are integer-only");
        self.ko[v.index() as usize]
    }
}

fn operand_ko(o: &Operand, ko: &[u64]) -> u64 {
    match o {
        Operand::Reg(r) => ko[r.index() as usize],
        Operand::Imm(i) => *i as u64,
    }
}

/// Known-ones transfer: bits guaranteed set in each defined value.
fn transfer_ones(inst: &Inst, po: &[u64], ko: &[u64]) -> Vec<(Vreg, u64)> {
    let one = |dst: Vreg, mask: u64| vec![(dst, mask)];
    match inst {
        Inst::Alu {
            op,
            width,
            dst,
            a,
            b,
        } => {
            let ka = operand_ko(a, ko);
            let kb = operand_ko(b, ko);
            let pa = operand_po(a, po);
            let pb = operand_po(b, po);
            let m = match op {
                AluOp::And => ka & kb,
                AluOp::Or => ka | kb,
                // A result bit is certainly one when exactly one side is
                // certainly one and the other certainly zero.
                AluOp::Xor => (ka & !pb) | (kb & !pa),
                AluOp::Shl => match b {
                    Operand::Imm(c) => ka << ((*c as u64) % width.bits() as u64),
                    Operand::Reg(_) => 0,
                },
                AluOp::ShrL => match b {
                    Operand::Imm(c) => (ka & width.mask()) >> ((*c as u64) % width.bits() as u64),
                    Operand::Reg(_) => 0,
                },
                _ => 0,
            };
            one(*dst, m & width.mask())
        }
        Inst::Mov { dst, src } => one(*dst, operand_ko(src, ko)),
        Inst::Select { dst, t, f, .. } => one(*dst, operand_ko(t, ko) & operand_ko(f, ko)),
        Inst::Assume { dst, src, lo, .. } => {
            // If even the lower bound has a high bit set, that bit is set
            // for every value in the range... only safe when lo == hi.
            let base = ko[src.index() as usize];
            let _ = lo;
            one(*dst, base)
        }
        Inst::Cmp { dst, .. }
        | Inst::FCmp { dst, .. }
        | Inst::Load { dst, .. }
        | Inst::CvtFI { dst, .. } => one(*dst, 0),
        Inst::Call { rets, .. } => rets
            .iter()
            .filter(|r| r.is_int())
            .map(|r| (*r, 0))
            .collect(),
        _ => vec![],
    }
}

fn operand_po(o: &Operand, po: &[u64]) -> u64 {
    match o {
        Operand::Reg(r) => po[r.index() as usize],
        Operand::Imm(i) => *i as u64,
    }
}

/// Transfer function: possible-ones of each value defined by `inst`.
fn transfer(inst: &Inst, po: &[u64]) -> Vec<(Vreg, u64)> {
    let out = |dst: Vreg, mask: u64| vec![(dst, mask)];
    match inst {
        Inst::Alu {
            op,
            width,
            dst,
            a,
            b,
        } => {
            let pa = operand_po(a, po);
            let pb = operand_po(b, po);
            let wmask = width.mask();
            let m = match op {
                AluOp::And => pa & pb,
                AluOp::Or | AluOp::Xor => pa | pb,
                AluOp::Add => match pa.checked_add(pb) {
                    Some(s) => fill(s),
                    None => u64::MAX,
                },
                AluOp::Sub => u64::MAX,
                AluOp::Mul => match pa.checked_mul(pb) {
                    Some(p) => fill(p),
                    None => u64::MAX,
                },
                AluOp::Shl => match b {
                    Operand::Imm(c) => {
                        let c = (*c as u64) % width.bits() as u64;
                        pa << c
                    }
                    Operand::Reg(_) => u64::MAX,
                },
                AluOp::ShrL => match b {
                    Operand::Imm(c) => {
                        let c = (*c as u64) % width.bits() as u64;
                        (pa & wmask) >> c
                    }
                    // Shifting right only shrinks the value.
                    Operand::Reg(_) => fill(pa & wmask),
                },
                AluOp::ShrA => {
                    let sign = 1u64 << (width.bits() - 1);
                    if pa & wmask & sign == 0 {
                        match b {
                            Operand::Imm(c) => {
                                let c = (*c as u64) % width.bits() as u64;
                                (pa & wmask) >> c
                            }
                            Operand::Reg(_) => fill(pa & wmask),
                        }
                    } else {
                        u64::MAX
                    }
                }
                AluOp::DivU => fill(pa & wmask),
                AluOp::RemU => {
                    // Result is strictly less than the divisor (≤ pb as a value)
                    // and no larger than the dividend.
                    fill(pa & wmask).min(fill(pb & wmask))
                }
                AluOp::DivS | AluOp::RemS => {
                    let sign = 1u64 << (width.bits() - 1);
                    if (pa | pb) & wmask & sign == 0 {
                        fill(pa & wmask)
                    } else {
                        u64::MAX
                    }
                }
            };
            out(*dst, m & wmask)
        }
        Inst::Cmp { dst, .. } | Inst::FCmp { dst, .. } => out(*dst, 1),
        Inst::Mov { dst, src } => out(*dst, operand_po(src, po)),
        Inst::Select { dst, t, f, .. } => out(*dst, operand_po(t, po) | operand_po(f, po)),
        Inst::Assume { dst, src, hi, .. } => out(*dst, po[src.index() as usize] & fill(*hi)),
        Inst::Load {
            dst, width, signed, ..
        } => {
            let m = if *signed && *width != MemWidth::B8 {
                u64::MAX
            } else {
                width.unsigned_max()
            };
            out(*dst, m)
        }
        Inst::CvtFI { dst, .. } => out(*dst, u64::MAX),
        Inst::Call { rets, .. } => rets
            .iter()
            .filter(|r| r.is_int())
            .map(|r| (*r, u64::MAX))
            .collect(),
        // FP-defining instructions and stores define no integer registers.
        _ => vec![],
    }
}

// Re-evaluates the `Eq`-style helper used in docs/tests.
#[cfg(test)]
mod tests {
    use super::*;
    use sor_ir::{ModuleBuilder, Operand};

    #[test]
    fn fill_masks() {
        assert_eq!(fill(0), 0);
        assert_eq!(fill(1), 1);
        assert_eq!(fill(0b100), 0b111);
        assert_eq!(fill(u64::MAX), u64::MAX);
        assert_eq!(fill(1 << 63), u64::MAX);
    }

    #[test]
    fn masked_loop_guard_has_one_possible_bit() {
        // The paper's Figure 6: r3 alternates via `xor r3, r3, 1` from 0.
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let guard = f.movi(0);
        let header = f.block();
        let exit = f.block();
        f.jump(header);
        f.switch_to(header);
        let flipped = f.xor(sor_ir::Width::W64, guard, 1i64);
        f.mov_to(guard, flipped);
        let c = f.cmp(sor_ir::CmpOp::Eq, sor_ir::Width::W64, guard, 0i64);
        f.branch(c, exit, header);
        f.switch_to(exit);
        f.emit(Operand::reg(guard));
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let kb = KnownBits::new(&m.funcs[0]);
        assert_eq!(kb.possible_ones(guard), 1);
        assert_eq!(kb.known_zeros(guard), !1);
    }

    #[test]
    fn byte_load_then_and_narrow() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.alloc_global("g", 16);
        let mut f = mb.function("main");
        let base = f.movi(g as i64);
        let x = f.load(MemWidth::B1, base, 0);
        let y = f.and(sor_ir::Width::W64, x, 0x0Fi64);
        let z = f.add(sor_ir::Width::W64, y, y);
        f.emit(Operand::reg(z));
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let kb = KnownBits::new(&m.funcs[0]);
        assert_eq!(kb.possible_ones(x), 0xFF);
        assert_eq!(kb.possible_ones(y), 0x0F);
        // y + y <= 0x1E, so possible ones fill to 0x1F.
        assert_eq!(kb.possible_ones(z), 0x1F);
    }

    #[test]
    fn signed_narrow_load_is_unconstrained() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.alloc_global("g", 16);
        let mut f = mb.function("main");
        let base = f.movi(g as i64);
        let x = f.loads(MemWidth::B2, base, 0);
        f.emit(Operand::reg(x));
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let kb = KnownBits::new(&m.funcs[0]);
        assert_eq!(kb.possible_ones(x), u64::MAX);
    }

    #[test]
    fn w32_ops_clear_high_bits() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let p = f.param(RegClass::Int);
        let x = f.add(sor_ir::Width::W32, p, p);
        f.emit(Operand::reg(x));
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let kb = KnownBits::new(&m.funcs[0]);
        assert_eq!(kb.possible_ones(p), u64::MAX);
        assert_eq!(kb.possible_ones(x), u32::MAX as u64);
    }

    #[test]
    fn known_ones_track_constants_and_ors() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let p = f.param(RegClass::Int);
        let tagged = f.or(sor_ir::Width::W64, p, 0xF0i64);
        let masked = f.and(sor_ir::Width::W64, tagged, 0xFFi64);
        f.emit(Operand::reg(masked));
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let kb = KnownBits::new(&m.funcs[0]);
        assert_eq!(kb.known_ones(p), 0);
        assert_eq!(kb.known_ones(tagged), 0xF0);
        assert_eq!(kb.known_ones(masked), 0xF0);
        // Known ones are always a subset of possible ones.
        assert_eq!(
            kb.known_ones(masked) & kb.possible_ones(masked),
            kb.known_ones(masked)
        );
    }

    #[test]
    fn known_ones_survive_shifts_and_loops() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let v = f.movi(0b1010);
        let header = f.block();
        let exit = f.block();
        f.jump(header);
        f.switch_to(header);
        let shifted = f.shl(sor_ir::Width::W64, v, 1i64);
        let retag = f.or(sor_ir::Width::W64, shifted, 0b1010i64);
        f.mov_to(v, retag);
        let c = f.cmp(sor_ir::CmpOp::LtU, sor_ir::Width::W64, v, 4096i64);
        f.branch(c, header, exit);
        f.switch_to(exit);
        f.emit(Operand::reg(v));
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let kb = KnownBits::new(&m.funcs[0]);
        // v joins `movi 0b1010` and `or .., 0b1010`: bits 1 and 3 always set.
        assert_eq!(kb.known_ones(v) & 0b1010, 0b1010);
    }

    #[test]
    fn cmp_results_are_boolean() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let p = f.param(RegClass::Int);
        let c = f.cmp(sor_ir::CmpOp::LtU, sor_ir::Width::W64, p, 10i64);
        f.emit(Operand::reg(c));
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let kb = KnownBits::new(&m.funcs[0]);
        assert_eq!(kb.possible_ones(c), 1);
    }
}
