//! Unsigned value-range analysis for TRUMP applicability.
//!
//! TRUMP (paper §4) keeps a redundant copy `3·x` of every protected value.
//! The scheme is only sound when `3·x` cannot overflow the 64-bit register:
//! a wrapping codeword can masquerade as valid after a bit flip, and the
//! recovery division would reconstruct the wrong value. The compiler must
//! therefore prove an upper bound on every value in a protected dependence
//! chain (§4.3). The two sources of bounds the paper leans on — limited
//! valid-address ranges for pointers and 32-bit C integer types on a 64-bit
//! machine — show up here as bounded loads/globals and `W32` operations.
//!
//! Like [`crate::KnownBits`], the analysis is flow-insensitive over virtual
//! registers with a join per definition, plus widening to guarantee
//! termination on loop-carried arithmetic.

use sor_ir::{AluOp, Function, Inst, MemWidth, Operand, RegClass, Vreg, Width};

/// An inclusive unsigned interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

// The checked `add`/`sub`/`mul`/`shl`/`shr` below deliberately shadow the
// operator-trait names: they are interval transfer functions returning
// `Option`, not the std operators.
#[allow(clippy::should_implement_trait)]
impl Interval {
    /// The full 64-bit range (no information).
    pub const FULL: Interval = Interval {
        lo: 0,
        hi: u64::MAX,
    };

    /// A single value.
    pub fn exact(v: u64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// `[lo, hi]`; panics if `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// Whether this interval carries no information.
    pub fn is_full(self) -> bool {
        self == Interval::FULL
    }

    /// Smallest interval containing both.
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Intersection; `None` when disjoint.
    pub fn meet(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Interval addition; `None` when the sum may exceed `u64::MAX`.
    pub fn add(self, other: Interval) -> Option<Interval> {
        Some(Interval {
            lo: self.lo.checked_add(other.lo)?,
            hi: self.hi.checked_add(other.hi)?,
        })
    }

    /// Interval subtraction; `None` when the difference may go below zero.
    pub fn sub(self, other: Interval) -> Option<Interval> {
        if self.lo < other.hi {
            return None;
        }
        Some(Interval {
            lo: self.lo - other.hi,
            hi: self.hi - other.lo,
        })
    }

    /// Interval multiplication; `None` on possible overflow.
    pub fn mul(self, other: Interval) -> Option<Interval> {
        Some(Interval {
            lo: self.lo.checked_mul(other.lo)?,
            hi: self.hi.checked_mul(other.hi)?,
        })
    }

    /// Left shift by a constant; `None` on possible overflow.
    pub fn shl(self, amount: u32) -> Option<Interval> {
        if amount >= 64 {
            return None;
        }
        if self.hi.leading_zeros() < amount {
            return None;
        }
        Some(Interval {
            lo: self.lo << amount,
            hi: self.hi << amount,
        })
    }

    /// Logical right shift by a constant.
    pub fn shr(self, amount: u32) -> Interval {
        if amount >= 64 {
            return Interval::exact(0);
        }
        Interval {
            lo: self.lo >> amount,
            hi: self.hi >> amount,
        }
    }

    /// Whether the AN-encoded copy `3·x` fits in 64 bits for every value in
    /// the interval — the TRUMP overflow condition `x < 2^M / A` from §4.3.
    pub fn an_encodable(self) -> bool {
        self.hi <= u64::MAX / 3
    }
}

/// Value ranges per integer virtual register.
#[derive(Debug, Clone)]
pub struct Ranges {
    ranges: Vec<Interval>,
}

/// Number of fixpoint sweeps before widening kicks in.
const WIDEN_AFTER: usize = 4;

impl Ranges {
    /// Runs the analysis on `func`.
    pub fn new(func: &Function) -> Self {
        let n = func.int_vreg_count() as usize;
        // Bottom is encoded as "not yet defined": start everything at an
        // impossible empty marker via Option.
        let mut ranges: Vec<Option<Interval>> = vec![None; n];
        for p in &func.params {
            if p.is_int() {
                ranges[p.index() as usize] = Some(Interval::FULL);
            }
        }
        for sweep in 0.. {
            let mut changed = false;
            for block in &func.blocks {
                for inst in &block.insts {
                    for (dst, iv) in transfer(inst, &ranges) {
                        let slot = &mut ranges[dst.index() as usize];
                        let joined = match *slot {
                            None => iv,
                            Some(old) => {
                                let j = old.join(iv);
                                if j == old {
                                    continue;
                                }
                                // Widening: once bounds keep moving, give up
                                // on precision to guarantee termination.
                                if sweep >= WIDEN_AFTER {
                                    Interval::FULL
                                } else {
                                    j
                                }
                            }
                        };
                        *slot = Some(joined);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Narrowing: widening is blunt — a value that merely *tracked* a
        // slowly-growing input (an `assume` of a loop counter, say) was
        // widened along with it even though its transfer function is
        // bounded. Recomputing every definition from the post-widening
        // state replaces each value with the join of its defs' transfer
        // results, which is sound (transfer is monotone, the current state
        // is an over-approximation) and restores bounded facts.
        for _ in 0..2 {
            let mut fresh: Vec<Option<Interval>> = vec![None; n];
            for p in &func.params {
                if p.is_int() {
                    fresh[p.index() as usize] = Some(Interval::FULL);
                }
            }
            for block in &func.blocks {
                for inst in &block.insts {
                    for (dst, iv) in transfer(inst, &ranges) {
                        let slot = &mut fresh[dst.index() as usize];
                        *slot = Some(match *slot {
                            None => iv,
                            Some(old) => old.join(iv),
                        });
                    }
                }
            }
            // Values with no definitions (never written) keep their old
            // state; everything else takes the recomputed interval.
            for (old, new) in ranges.iter_mut().zip(fresh) {
                if let Some(nv) = new {
                    *old = Some(nv);
                }
            }
        }

        Ranges {
            ranges: ranges
                .into_iter()
                .map(|r| r.unwrap_or(Interval::FULL))
                .collect(),
        }
    }

    /// The inferred range of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an integer register of the analyzed function.
    pub fn range(&self, v: Vreg) -> Interval {
        assert_eq!(v.class(), RegClass::Int, "ranges are integer-only");
        self.ranges[v.index() as usize]
    }

    /// Range of an operand (registers via the analysis, immediates exactly).
    pub fn operand_range(&self, o: Operand) -> Interval {
        match o {
            Operand::Reg(r) => self.range(r),
            Operand::Imm(i) => Interval::exact(i as u64),
        }
    }
}

/// The interval of `value as u32` for values in `iv`. Truncation is only
/// interval-preserving when the whole interval lies in one 2^32-aligned
/// window; otherwise any 32-bit value is possible.
fn truncate32(iv: Interval) -> Interval {
    if (iv.lo >> 32) == (iv.hi >> 32) {
        Interval::new(iv.lo & 0xFFFF_FFFF, iv.hi & 0xFFFF_FFFF)
    } else {
        Interval::new(0, u32::MAX as u64)
    }
}

fn op_range(o: &Operand, ranges: &[Option<Interval>]) -> Interval {
    match o {
        Operand::Reg(r) => ranges[r.index() as usize].unwrap_or(Interval::FULL),
        Operand::Imm(i) => Interval::exact(*i as u64),
    }
}

/// The interval the instruction's result is guaranteed to lie in, assuming
/// the operands lie in their intervals.
fn transfer(inst: &Inst, ranges: &[Option<Interval>]) -> Vec<(Vreg, Interval)> {
    let one = |dst: Vreg, iv: Interval| vec![(dst, iv)];
    match inst {
        Inst::Alu {
            op,
            width,
            dst,
            a,
            b,
        } => {
            let ra = op_range(a, ranges);
            let rb = op_range(b, ranges);
            let w32 = *width == Width::W32;
            let wfull = if w32 {
                Interval::new(0, u32::MAX as u64)
            } else {
                Interval::FULL
            };
            let iv = match op {
                AluOp::Add => ra.add(rb),
                AluOp::Sub => ra.sub(rb),
                AluOp::Mul => ra.mul(rb),
                AluOp::Shl => match b {
                    Operand::Imm(c) => ra.shl((*c as u64 % width.bits() as u64) as u32),
                    Operand::Reg(_) => None,
                },
                AluOp::ShrL => Some(match b {
                    Operand::Imm(c) => {
                        // The machine truncates the operand to the operation
                        // width before shifting.
                        let m = if w32 { truncate32(ra) } else { ra };
                        m.shr((*c as u64 % width.bits() as u64) as u32)
                    }
                    Operand::Reg(_) => Interval::new(0, ra.hi),
                }),
                AluOp::ShrA => {
                    let sign = 1u64 << (width.bits() - 1);
                    if ra.hi < sign {
                        Some(match b {
                            Operand::Imm(c) => ra.shr((*c as u64 % width.bits() as u64) as u32),
                            Operand::Reg(_) => Interval::new(0, ra.hi),
                        })
                    } else {
                        None
                    }
                }
                AluOp::And => Some(Interval::new(0, ra.hi.min(rb.hi))),
                AluOp::Or | AluOp::Xor => {
                    // Bounded by the next power of two above both.
                    let m = ra.hi | rb.hi;
                    let hi = if m == 0 {
                        0
                    } else {
                        let msb = 63 - m.leading_zeros();
                        if msb == 63 {
                            u64::MAX
                        } else {
                            (1u64 << (msb + 1)) - 1
                        }
                    };
                    Some(Interval::new(0, hi))
                }
                AluOp::DivU => Some(Interval::new(0, ra.hi)),
                AluOp::RemU => Some(Interval::new(0, ra.hi.min(rb.hi.saturating_sub(1)))),
                AluOp::DivS => {
                    let sign = 1u64 << (width.bits() - 1);
                    (ra.hi < sign && rb.hi < sign).then(|| Interval::new(0, ra.hi))
                }
                AluOp::RemS => {
                    let sign = 1u64 << (width.bits() - 1);
                    (ra.hi < sign && rb.hi < sign)
                        .then(|| Interval::new(0, rb.hi.saturating_sub(1)))
                }
            };
            // A result that may wrap at the operation width collapses to the
            // width's full range.
            let iv = match iv {
                Some(iv) if iv.hi <= wfull.hi => iv,
                _ => wfull,
            };
            one(*dst, iv)
        }
        Inst::Cmp { dst, .. } | Inst::FCmp { dst, .. } => one(*dst, Interval::new(0, 1)),
        Inst::Mov { dst, src } => one(*dst, op_range(src, ranges)),
        Inst::Select { dst, t, f, .. } => one(*dst, op_range(t, ranges).join(op_range(f, ranges))),
        Inst::Assume { dst, src, lo, hi } => {
            let fact = Interval::new(*lo, *hi);
            let src_iv = ranges[src.index() as usize].unwrap_or(Interval::FULL);
            one(*dst, src_iv.meet(fact).unwrap_or(fact))
        }
        Inst::Load {
            dst, width, signed, ..
        } => {
            let iv = if *signed && *width != MemWidth::B8 {
                Interval::FULL
            } else {
                Interval::new(0, width.unsigned_max())
            };
            one(*dst, iv)
        }
        Inst::CvtFI { dst, .. } => one(*dst, Interval::FULL),
        Inst::Call { rets, .. } => rets
            .iter()
            .filter(|r| r.is_int())
            .map(|r| (*r, Interval::FULL))
            .collect(),
        _ => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_ir::{CmpOp, ModuleBuilder, Operand};

    #[test]
    fn interval_arithmetic() {
        let a = Interval::new(2, 10);
        let b = Interval::new(1, 3);
        assert_eq!(a.add(b), Some(Interval::new(3, 13)));
        assert_eq!(a.sub(b), None); // 2 - 3 would underflow
        assert_eq!(Interval::new(5, 10).sub(b), Some(Interval::new(2, 9)));
        assert_eq!(a.mul(b), Some(Interval::new(2, 30)));
        assert_eq!(a.shl(2), Some(Interval::new(8, 40)));
        assert_eq!(Interval::new(0, u64::MAX).shl(1), None);
        assert_eq!(a.shr(1), Interval::new(1, 5));
        assert!(Interval::new(0, 1 << 40).an_encodable());
        assert!(!Interval::FULL.an_encodable());
    }

    #[test]
    fn join_meet() {
        let a = Interval::new(0, 5);
        let b = Interval::new(3, 9);
        assert_eq!(a.join(b), Interval::new(0, 9));
        assert_eq!(a.meet(b), Some(Interval::new(3, 5)));
        assert_eq!(a.meet(Interval::new(7, 9)), None);
    }

    #[test]
    fn bounded_load_chain_is_encodable() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.alloc_global("g", 64);
        let mut f = mb.function("main");
        let base = f.movi(g as i64);
        let x = f.load(MemWidth::B4, base, 0); // < 2^32
        let y = f.add(Width::W64, x, 100i64);
        let z = f.mul(Width::W64, y, 8i64);
        f.emit(Operand::reg(z));
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let r = Ranges::new(&m.funcs[0]);
        assert!(r.range(x).an_encodable());
        assert!(r.range(y).an_encodable());
        assert!(r.range(z).an_encodable());
        assert_eq!(r.range(x).hi, u32::MAX as u64);
    }

    #[test]
    fn widening_terminates_on_loop_counter() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let i = f.movi(0);
        let header = f.block();
        let body = f.block();
        let exit = f.block();
        f.jump(header);
        f.switch_to(header);
        let c = f.cmp(CmpOp::LtU, Width::W64, i, 1000i64);
        f.branch(c, body, exit);
        f.switch_to(body);
        let i2 = f.add(Width::W64, i, 1i64);
        f.mov_to(i, i2);
        f.jump(header);
        f.switch_to(exit);
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let r = Ranges::new(&m.funcs[0]);
        // Unbounded by the flow-insensitive analysis: widened to FULL.
        assert!(r.range(i).is_full());
    }

    #[test]
    fn assume_recovers_precision() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let p = f.param(RegClass::Int);
        let idx = f.assume(p, 0, 4095);
        let scaled = f.mul(Width::W64, idx, 8i64);
        f.emit(Operand::reg(scaled));
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let r = Ranges::new(&m.funcs[0]);
        assert!(r.range(p).is_full());
        assert_eq!(r.range(idx), Interval::new(0, 4095));
        assert_eq!(r.range(scaled), Interval::new(0, 4095 * 8));
        assert!(r.range(scaled).an_encodable());
    }

    #[test]
    fn w32_wrap_collapses_to_width_range() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let p = f.param(RegClass::Int);
        let x = f.add(Width::W32, p, p); // may wrap mod 2^32
        f.emit(Operand::reg(x));
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let r = Ranges::new(&m.funcs[0]);
        assert_eq!(r.range(x), Interval::new(0, u32::MAX as u64));
    }

    #[test]
    fn w32_shift_truncates_rather_than_clamps() {
        // Regression (found by the soundness proptest): `-257 as u32` is
        // 0xFFFF_FEFF, not 0xFFFF_FFFF — a min-clamp transfer claimed the
        // exact value 0xFFFFFF for `(-257) >>w32 8` while the machine
        // computes 0xFFFFFE.
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let x = f.movi(-257);
        let y = f.shrl(Width::W32, x, 8i64);
        f.emit(Operand::reg(y));
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let r = Ranges::new(&m.funcs[0]);
        let iv = r.range(y);
        assert!(
            iv.lo <= 0xFF_FFFE && 0xFF_FFFE <= iv.hi,
            "true value 0xFFFFFE outside [{:#x}, {:#x}]",
            iv.lo,
            iv.hi
        );
    }

    #[test]
    fn truncate32_windows() {
        assert_eq!(
            truncate32(Interval::new(5, 10)),
            Interval::new(5, 10),
            "low window is identity"
        );
        assert_eq!(
            truncate32(Interval::exact((-257i64) as u64)),
            Interval::exact(0xFFFF_FEFF)
        );
        assert_eq!(
            truncate32(Interval::new(u32::MAX as u64, u32::MAX as u64 + 1)),
            Interval::new(0, u32::MAX as u64),
            "window-crossing collapses"
        );
    }

    #[test]
    fn negative_immediates_are_not_encodable() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let x = f.movi(-1);
        f.emit(Operand::reg(x));
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let r = Ranges::new(&m.funcs[0]);
        assert!(!r.range(x).an_encodable());
    }
}
