//! # sor-analysis — dataflow analyses for the recovery transforms
//!
//! The transforms in `sor-core` need four facts about a function:
//!
//! * its control-flow graph and loops ([`Cfg`], [`LoopInfo`]) — MASK inserts
//!   its enforcement instructions at loop headers;
//! * which values are live where ([`Liveness`]) — MASK targets loop-carried
//!   values, and the register allocator in `sor-regalloc` builds intervals
//!   from the same analysis;
//! * which bits of each value are provably zero ([`KnownBits`]) — the MASK
//!   invariant source (paper §5);
//! * an unsigned value range for each value ([`Ranges`]) — the TRUMP
//!   applicability test that the AN-encoded copy `3·x` can never overflow
//!   (paper §4.3).
//!
//! Passes share these through an [`AnalysisCache`]: per-function,
//! lazily-computed, generation-stamped handles that are invalidated only
//! when a pass reports it mutated the function.

mod cache;
mod cfg;
mod known_bits;
mod liveness;
mod loops;
mod range;

pub use cache::{AnalysisCache, CacheStats};
pub use cfg::Cfg;
pub use known_bits::KnownBits;
pub use liveness::Liveness;
pub use loops::{Loop, LoopInfo};
pub use range::{Interval, Ranges};
