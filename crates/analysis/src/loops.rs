//! Natural-loop detection from back edges.
//!
//! MASK inserts its invariant-enforcement `and`s at loop headers for values
//! that are live around the loop (the paper's Figure 6 pattern), so the
//! transform needs to know where loops are and what their bodies contain.

use crate::cfg::Cfg;
use sor_ir::BlockId;
use std::collections::HashSet;

/// One natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// All blocks in the loop body, including the header.
    pub body: HashSet<BlockId>,
}

/// All natural loops of a function.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    loops: Vec<Loop>,
}

impl LoopInfo {
    /// Finds natural loops: for each DFS back edge `t -> h`, the loop body is
    /// `h` plus every block that can reach `t` without passing through `h`.
    pub fn new(cfg: &Cfg) -> Self {
        // DFS to find back edges. A back edge is an edge to a block currently
        // on the DFS stack.
        let n = cfg.block_count();
        let mut state = vec![0u8; n];
        let mut back_edges: Vec<(BlockId, BlockId)> = Vec::new();
        if n > 0 {
            let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
            state[0] = 1;
            while let Some(&mut (b, ref mut next)) = stack.last_mut() {
                let succs = cfg.succs(b);
                if *next < succs.len() {
                    let s = succs[*next];
                    *next += 1;
                    match state[s.index()] {
                        0 => {
                            state[s.index()] = 1;
                            stack.push((s, 0));
                        }
                        1 => back_edges.push((b, s)),
                        _ => {}
                    }
                } else {
                    state[b.index()] = 2;
                    stack.pop();
                }
            }
        }

        // Merge back edges with the same header into one loop.
        let mut loops: Vec<Loop> = Vec::new();
        for (tail, header) in back_edges {
            let mut body = HashSet::new();
            body.insert(header);
            // Walk predecessors backward from the tail, stopping at header.
            let mut work = vec![tail];
            while let Some(b) = work.pop() {
                if body.insert(b) {
                    for &p in cfg.preds(b) {
                        work.push(p);
                    }
                }
            }
            if let Some(l) = loops.iter_mut().find(|l| l.header == header) {
                l.body.extend(body);
            } else {
                loops.push(Loop { header, body });
            }
        }
        LoopInfo { loops }
    }

    /// The loops found, in discovery order.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Whether `b` is a loop header.
    pub fn is_header(&self, b: BlockId) -> bool {
        self.loops.iter().any(|l| l.header == b)
    }

    /// The innermost-discovered loop containing `b`, if any.
    pub fn containing(&self, b: BlockId) -> Option<&Loop> {
        // Smallest body wins as a proxy for innermost.
        self.loops
            .iter()
            .filter(|l| l.body.contains(&b))
            .min_by_key(|l| l.body.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_ir::{CmpOp, ModuleBuilder, Width};

    #[test]
    fn finds_simple_loop() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let i = f.movi(0);
        let header = f.block();
        let body = f.block();
        let exit = f.block();
        f.jump(header);
        f.switch_to(header);
        let c = f.cmp(CmpOp::LtS, Width::W64, i, 10i64);
        f.branch(c, body, exit);
        f.switch_to(body);
        let i2 = f.add(Width::W64, i, 1i64);
        f.mov_to(i, i2);
        f.jump(header);
        f.switch_to(exit);
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let cfg = Cfg::new(&m.funcs[0]);
        let li = LoopInfo::new(&cfg);
        assert_eq!(li.loops().len(), 1);
        let l = &li.loops()[0];
        assert_eq!(l.header, BlockId(1));
        assert!(l.body.contains(&BlockId(1)));
        assert!(l.body.contains(&BlockId(2)));
        assert!(!l.body.contains(&BlockId(3)));
        assert!(li.is_header(BlockId(1)));
        assert!(!li.is_header(BlockId(0)));
    }

    #[test]
    fn nested_loops_find_two_headers() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let i = f.movi(0);
        let oh = f.block(); // outer header
        let ih = f.block(); // inner header
        let ib = f.block(); // inner body
        let ob = f.block(); // outer latch
        let exit = f.block();
        f.jump(oh);
        f.switch_to(oh);
        let c1 = f.cmp(CmpOp::LtS, Width::W64, i, 10i64);
        f.branch(c1, ih, exit);
        f.switch_to(ih);
        let c2 = f.cmp(CmpOp::LtS, Width::W64, i, 5i64);
        f.branch(c2, ib, ob);
        f.switch_to(ib);
        let i2 = f.add(Width::W64, i, 1i64);
        f.mov_to(i, i2);
        f.jump(ih);
        f.switch_to(ob);
        let i3 = f.add(Width::W64, i, 1i64);
        f.mov_to(i, i3);
        f.jump(oh);
        f.switch_to(exit);
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let cfg = Cfg::new(&m.funcs[0]);
        let li = LoopInfo::new(&cfg);
        assert_eq!(li.loops().len(), 2);
        // The inner loop is the smaller one containing the inner body.
        let inner = li.containing(BlockId(3)).unwrap();
        assert_eq!(inner.header, BlockId(2));
    }

    #[test]
    fn no_loops_in_straight_line() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let cfg = Cfg::new(&m.funcs[0]);
        assert!(LoopInfo::new(&cfg).loops().is_empty());
    }
}
