//! Lazily-computed, generation-stamped per-function analysis handles.
//!
//! The transforms in `sor-core` used to rebuild [`Cfg`], [`Liveness`],
//! [`KnownBits`], [`Ranges`] and [`LoopInfo`] from scratch at every use
//! site, so a hybrid pipeline (TRUMP then MASK) recomputed the same
//! dataflow two or three times per function. An [`AnalysisCache`] computes
//! each analysis at most once per *function generation*: a pass that
//! mutates a function reports it via [`AnalysisCache::invalidate`], which
//! bumps the generation and drops the stale handles; every other query is
//! a cache hit returning a shared [`Rc`] handle.
//!
//! The cache is keyed by function index. The caller (normally a
//! `sor-core` pipeline) owns the invalidation contract: query with the
//! function you are about to read, and invalidate the index whenever you
//! replace or mutate that function. Handles are snapshots — holding an
//! `Rc<Cfg>` across an invalidation is safe, it just describes the old
//! body.
//!
//! ```
//! use sor_analysis::AnalysisCache;
//! use sor_ir::{ModuleBuilder, Width};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let mut f = mb.function("main");
//! let x = f.movi(1);
//! let _y = f.add(Width::W64, x, 2i64);
//! f.ret(&[]);
//! let id = f.finish();
//! let module = mb.finish(id);
//!
//! let mut cache = AnalysisCache::for_module(&module);
//! let a = cache.cfg(0, &module.funcs[0]);
//! let b = cache.cfg(0, &module.funcs[0]); // hit: same handle
//! assert!(std::rc::Rc::ptr_eq(&a, &b));
//! assert_eq!(cache.stats().hits, 1);
//!
//! cache.invalidate(0); // a pass mutated the function
//! let c = cache.cfg(0, &module.funcs[0]); // recomputed
//! assert!(!std::rc::Rc::ptr_eq(&a, &c));
//! ```

use crate::cfg::Cfg;
use crate::known_bits::KnownBits;
use crate::liveness::Liveness;
use crate::loops::LoopInfo;
use crate::range::Ranges;
use sor_ir::{Function, Module};
use std::rc::Rc;

/// Hit/miss counters for one cache lifetime.
///
/// A "query" is one public accessor call; a hit means the handle was
/// served without recomputing the analysis. Dependent analyses count
/// their prerequisites separately (asking for [`Liveness`] also queries
/// [`Cfg`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from a cached handle.
    pub hits: u64,
    /// Queries that had to run the analysis.
    pub misses: u64,
    /// Generation bumps from [`AnalysisCache::invalidate`] /
    /// [`AnalysisCache::invalidate_all`].
    pub invalidations: u64,
}

impl CacheStats {
    /// Fraction of queries served from cache (0 when nothing was queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct FuncEntry {
    generation: u64,
    cfg: Option<Rc<Cfg>>,
    liveness: Option<Rc<Liveness>>,
    known_bits: Option<Rc<KnownBits>>,
    ranges: Option<Rc<Ranges>>,
    loops: Option<Rc<LoopInfo>>,
}

impl FuncEntry {
    fn clear(&mut self) {
        self.generation += 1;
        self.cfg = None;
        self.liveness = None;
        self.known_bits = None;
        self.ranges = None;
        self.loops = None;
    }
}

/// Per-function memo table for the five analyses.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    entries: Vec<FuncEntry>,
    stats: CacheStats,
}

macro_rules! cached {
    ($self:ident, $fi:ident, $func:ident, $field:ident, $build:expr) => {{
        $self.ensure($fi);
        if let Some(h) = &$self.entries[$fi].$field {
            $self.stats.hits += 1;
            return Rc::clone(h);
        }
        $self.stats.misses += 1;
        let h: Rc<_> = Rc::new($build);
        $self.entries[$fi].$field = Some(Rc::clone(&h));
        h
    }};
}

impl AnalysisCache {
    /// An empty cache; entries appear on first query.
    pub fn new() -> Self {
        AnalysisCache::default()
    }

    /// A cache pre-sized for `module`'s function count.
    pub fn for_module(module: &Module) -> Self {
        let mut c = AnalysisCache::default();
        c.ensure(module.funcs.len().saturating_sub(1));
        c
    }

    fn ensure(&mut self, fi: usize) {
        if self.entries.len() <= fi {
            self.entries.resize_with(fi + 1, FuncEntry::default);
        }
    }

    /// The control-flow graph of function `fi`.
    pub fn cfg(&mut self, fi: usize, func: &Function) -> Rc<Cfg> {
        cached!(self, fi, func, cfg, Cfg::new(func))
    }

    /// Liveness of function `fi` (computes/reuses its [`Cfg`] first).
    pub fn liveness(&mut self, fi: usize, func: &Function) -> Rc<Liveness> {
        let cfg = self.cfg(fi, func);
        cached!(self, fi, func, liveness, Liveness::new(func, &cfg))
    }

    /// Known-bits facts of function `fi`.
    pub fn known_bits(&mut self, fi: usize, func: &Function) -> Rc<KnownBits> {
        cached!(self, fi, func, known_bits, KnownBits::new(func))
    }

    /// Unsigned value ranges of function `fi`.
    pub fn ranges(&mut self, fi: usize, func: &Function) -> Rc<Ranges> {
        cached!(self, fi, func, ranges, Ranges::new(func))
    }

    /// Loop nest of function `fi` (computes/reuses its [`Cfg`] first).
    pub fn loops(&mut self, fi: usize, func: &Function) -> Rc<LoopInfo> {
        let cfg = self.cfg(fi, func);
        cached!(self, fi, func, loops, LoopInfo::new(&cfg))
    }

    /// Drops every cached analysis of function `fi` and bumps its
    /// generation. A pass MUST call this for each function it mutated
    /// before anything queries that function again.
    pub fn invalidate(&mut self, fi: usize) {
        self.ensure(fi);
        self.entries[fi].clear();
        self.stats.invalidations += 1;
    }

    /// Invalidates every function.
    pub fn invalidate_all(&mut self) {
        for e in &mut self.entries {
            e.clear();
        }
        self.stats.invalidations += 1;
    }

    /// The generation stamp of function `fi`: 0 until first invalidated,
    /// bumped once per invalidation. Lets a caller detect that a handle it
    /// kept was taken before a mutation.
    pub fn generation(&self, fi: usize) -> u64 {
        self.entries.get(fi).map_or(0, |e| e.generation)
    }

    /// Lifetime hit/miss/invalidation counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_ir::{CmpOp, ModuleBuilder, Width};

    fn looped_module() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let i = f.movi(0);
        let header = f.block();
        let body = f.block();
        let exit = f.block();
        f.jump(header);
        f.switch_to(header);
        let c = f.cmp(CmpOp::LtU, Width::W64, i, 4i64);
        f.branch(c, body, exit);
        f.switch_to(body);
        let i2 = f.add(Width::W64, i, 1i64);
        f.mov_to(i, i2);
        f.jump(header);
        f.switch_to(exit);
        f.ret(&[]);
        let id = f.finish();
        mb.finish(id)
    }

    #[test]
    fn every_analysis_is_memoized() {
        let m = looped_module();
        let f = &m.funcs[0];
        let mut cache = AnalysisCache::for_module(&m);
        let _ = cache.cfg(0, f);
        let _ = cache.liveness(0, f); // cfg hit + liveness miss
        let _ = cache.known_bits(0, f);
        let _ = cache.ranges(0, f);
        let _ = cache.loops(0, f); // cfg hit + loops miss
        let after_first = cache.stats();
        assert_eq!(after_first.misses, 5, "{after_first:?}");
        assert_eq!(after_first.hits, 2, "{after_first:?}");

        let _ = cache.liveness(0, f); // cfg hit + liveness hit
        let _ = cache.ranges(0, f);
        let s = cache.stats();
        assert_eq!(s.misses, 5, "no recomputation: {s:?}");
        assert_eq!(s.hits, 5, "{s:?}");
        assert!(s.hit_rate() > 0.4);
    }

    #[test]
    fn handles_are_shared_snapshots() {
        let m = looped_module();
        let f = &m.funcs[0];
        let mut cache = AnalysisCache::new();
        let a = cache.loops(0, f);
        let b = cache.loops(0, f);
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(a.loops().len(), 1);
    }

    #[test]
    fn invalidation_bumps_generation_and_recomputes() {
        let m = looped_module();
        let f = &m.funcs[0];
        let mut cache = AnalysisCache::for_module(&m);
        let before = cache.cfg(0, f);
        assert_eq!(cache.generation(0), 0);
        cache.invalidate(0);
        assert_eq!(cache.generation(0), 1);
        let after = cache.cfg(0, f);
        assert!(!Rc::ptr_eq(&before, &after));
        // The old handle is still a usable snapshot.
        assert_eq!(before.rpo().len(), after.rpo().len());
    }

    #[test]
    fn functions_are_independent() {
        let mut mb = ModuleBuilder::new("two");
        let helper = mb.declare("helper");
        let mut main = mb.function("main");
        main.call(helper, &[], &[]);
        main.ret(&[]);
        let main_id = main.finish();
        let mut h = mb.define(helper, "helper");
        h.ret(&[]);
        h.finish();
        let m = mb.finish(main_id);

        let mut cache = AnalysisCache::for_module(&m);
        let a0 = cache.cfg(0, &m.funcs[0]);
        let _a1 = cache.cfg(1, &m.funcs[1]);
        cache.invalidate(1);
        let b0 = cache.cfg(0, &m.funcs[0]);
        assert!(Rc::ptr_eq(&a0, &b0), "invalidating fn1 must not drop fn0");
        assert_eq!(cache.generation(0), 0);
        assert_eq!(cache.generation(1), 1);
    }
}
