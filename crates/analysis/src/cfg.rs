//! Control-flow graph: predecessors, successors, reverse post-order.

use sor_ir::{BlockId, Function};

/// The control-flow graph of one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
}

impl Cfg {
    /// Builds the CFG of `func`.
    pub fn new(func: &Function) -> Self {
        let n = func.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (id, block) in func.iter_blocks() {
            for s in block.term.successors() {
                succs[id.index()].push(s);
                preds[s.index()].push(id);
            }
        }

        // Iterative post-order DFS from the entry block.
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
        let mut post = Vec::with_capacity(n);
        if n > 0 {
            let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
            state[0] = 1;
            while let Some(&mut (b, ref mut next)) = stack.last_mut() {
                if *next < succs[b.index()].len() {
                    let s = succs[b.index()][*next];
                    *next += 1;
                    if state[s.index()] == 0 {
                        state[s.index()] = 1;
                        stack.push((s, 0));
                    }
                } else {
                    state[b.index()] = 2;
                    post.push(b);
                    stack.pop();
                }
            }
        }
        post.reverse();
        Cfg {
            succs,
            preds,
            rpo: post,
        }
    }

    /// Successor blocks of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessor blocks of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Blocks in reverse post-order from the entry. Blocks unreachable from
    /// the entry are absent.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Number of blocks in the function (including unreachable ones).
    pub fn block_count(&self) -> usize {
        self.succs.len()
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo.contains(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_ir::{CmpOp, ModuleBuilder, Width};

    fn diamond() -> sor_ir::Module {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let c = f.cmp(CmpOp::Eq, Width::W64, 1i64, 1i64);
        let left = f.block();
        let right = f.block();
        let join = f.block();
        f.branch(c, left, right);
        f.switch_to(left);
        f.jump(join);
        f.switch_to(right);
        f.jump(join);
        f.switch_to(join);
        f.ret(&[]);
        let id = f.finish();
        mb.finish(id)
    }

    #[test]
    fn diamond_edges() {
        let m = diamond();
        let cfg = Cfg::new(&m.funcs[0]);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.rpo().first(), Some(&BlockId(0)));
        assert_eq!(cfg.rpo().last(), Some(&BlockId(3)));
        assert_eq!(cfg.rpo().len(), 4);
    }

    #[test]
    fn unreachable_blocks_are_not_in_rpo() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        f.ret(&[]);
        let dead = f.block();
        f.switch_to(dead);
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let cfg = Cfg::new(&m.funcs[0]);
        assert!(!cfg.is_reachable(BlockId(1)));
        assert_eq!(cfg.rpo().len(), 1);
        assert_eq!(cfg.block_count(), 2);
    }
}
