//! Classic backward liveness over the CFG.

use crate::cfg::Cfg;
use sor_ir::{BlockId, Function, Vreg};
use std::collections::HashSet;

/// Per-block live-in / live-out sets of virtual registers.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<HashSet<Vreg>>,
    live_out: Vec<HashSet<Vreg>>,
}

impl Liveness {
    /// Computes liveness for `func` using `cfg`.
    pub fn new(func: &Function, cfg: &Cfg) -> Self {
        let n = func.blocks.len();
        // Per-block gen (upward-exposed uses) and kill (defs).
        let mut gen = vec![HashSet::new(); n];
        let mut kill = vec![HashSet::new(); n];
        for (id, block) in func.iter_blocks() {
            let i = id.index();
            for inst in &block.insts {
                for u in inst.uses() {
                    if !kill[i].contains(&u) {
                        gen[i].insert(u);
                    }
                }
                for d in inst.defs() {
                    kill[i].insert(d);
                }
            }
            for u in block.term.uses() {
                if !kill[i].contains(&u) {
                    gen[i].insert(u);
                }
            }
        }

        let mut live_in = vec![HashSet::new(); n];
        let mut live_out = vec![HashSet::new(); n];
        // Iterate to a fixpoint, visiting blocks in reverse RPO for speed.
        let order: Vec<BlockId> = cfg.rpo().iter().rev().copied().collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let i = b.index();
                let mut out = HashSet::new();
                for s in cfg.succs(b) {
                    out.extend(live_in[s.index()].iter().copied());
                }
                let mut inn = gen[i].clone();
                for v in &out {
                    if !kill[i].contains(v) {
                        inn.insert(*v);
                    }
                }
                if out != live_out[i] || inn != live_in[i] {
                    live_out[i] = out;
                    live_in[i] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live on entry to `b`.
    pub fn live_in(&self, b: BlockId) -> &HashSet<Vreg> {
        &self.live_in[b.index()]
    }

    /// Registers live on exit from `b`.
    pub fn live_out(&self, b: BlockId) -> &HashSet<Vreg> {
        &self.live_out[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_ir::{CmpOp, ModuleBuilder, Operand, Width};

    #[test]
    fn loop_carried_value_is_live_at_header() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let i = f.movi(0);
        let header = f.block();
        let body = f.block();
        let exit = f.block();
        f.jump(header);
        f.switch_to(header);
        let c = f.cmp(CmpOp::LtS, Width::W64, i, 10i64);
        f.branch(c, body, exit);
        f.switch_to(body);
        let i2 = f.add(Width::W64, i, 1i64);
        f.mov_to(i, i2);
        f.jump(header);
        f.switch_to(exit);
        f.emit(Operand::reg(i));
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let func = &m.funcs[0];
        let cfg = Cfg::new(func);
        let live = Liveness::new(func, &cfg);
        // `i` (v0) is live around the loop.
        assert!(
            live.live_in(sor_ir::BlockId(1)).contains(
                &func.params.first().copied().unwrap_or_else(|| {
                    // v0 is the first int vreg.
                    sor_ir::Vreg::new(0, sor_ir::RegClass::Int)
                })
            ) || live
                .live_in(sor_ir::BlockId(1))
                .contains(&sor_ir::Vreg::new(0, sor_ir::RegClass::Int))
        );
        assert!(live
            .live_out(sor_ir::BlockId(2))
            .contains(&sor_ir::Vreg::new(0, sor_ir::RegClass::Int)));
        // The loop counter is dead after the final emit.
        assert!(live.live_out(sor_ir::BlockId(3)).is_empty());
    }

    #[test]
    fn straight_line_liveness_is_empty_at_exit() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let a = f.movi(1);
        let b = f.add(Width::W64, a, 1i64);
        f.emit(Operand::reg(b));
        f.ret(&[]);
        let id = f.finish();
        let m = mb.finish(id);
        let func = &m.funcs[0];
        let cfg = Cfg::new(func);
        let live = Liveness::new(func, &cfg);
        assert!(live.live_in(sor_ir::BlockId(0)).is_empty());
        assert!(live.live_out(sor_ir::BlockId(0)).is_empty());
    }
}
