//! # sor-models — the pluggable fault-model subsystem
//!
//! The paper's experimental surface is §7.1's single-bit integer-register
//! SEU. The infrastructure around it — decoded engine, SPMD lanes, ACE
//! certification, persistent store, server — is general enough to carry
//! any transient fault model, and the related work (Azambuja et al.'s
//! combined SEU/SET/control-flow evaluations, ZOFI's multi-model coverage
//! analysis) shows the interesting reliability story only emerges when
//! several models are evaluated against the same technique matrix.
//!
//! A [`FaultModel`] is a *sampler* over the generalized injection surface
//! of `sor-sim` ([`GenFault`]/[`FaultEffect`]): seed-stable, uniform over
//! the model's fault space, returning faults both execution engines inject
//! bit-identically. The models:
//!
//! | model | slug | effect |
//! |---|---|---|
//! | [`FaultModel::SeuReg`] | `seu-reg` | one register bit (the paper's model, draw-for-draw pinned to [`FaultSpec::sample`]) |
//! | [`FaultModel::PcCorrupt`] | `pc-corrupt` | one bit of the program counter before a fetch |
//! | [`FaultModel::MemBit`] | `mem-bit` | one bit of one data-memory byte |
//! | [`FaultModel::MultiBitUpset`] | `multi-bit` | an adjacent 2–4 bit register burst |
//! | [`FaultModel::TransientAlu`] | `transient-alu` | SET: one corrupted ALU result |
//!
//! `SeuReg` is the default everywhere and is **pinned bit-identical** to
//! the historical pipeline: it delegates to [`FaultSpec::sample`] for its
//! draws (consuming the RNG identically) and injects through
//! [`GenFault::from_spec`], so campaign fault sequences, histograms and
//! certified coverage under the default model are unchanged artifacts.

use sor_ir::{layout, Program};
use sor_rng::SmallRng;
use sor_sim::{FaultEffect, FaultSpec, GenFault, INJECTABLE_REGS};
use std::fmt;

/// Per-program sampling context: the bounds of each model's fault space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleCtx {
    /// Golden-run dynamic instruction count (the slot space).
    pub golden_len: u64,
    /// Static program length in instructions (the PC space).
    pub prog_len: usize,
    /// Data-memory sampling range, `[mem_lo, mem_hi)` — the initialized
    /// global segment, or one stack page for programs without globals.
    pub mem_lo: u64,
    /// Exclusive upper bound of the data-memory sampling range.
    pub mem_hi: u64,
}

impl SampleCtx {
    /// Derives the context from a lowered program and its golden run
    /// length. The memory range is the global data segment; programs with
    /// no globals fall back to the top stack page (where every frame
    /// lives for the small workloads).
    pub fn for_program(prog: &Program, golden_len: u64) -> SampleCtx {
        // `global_extent` is a byte count above GLOBAL_BASE, not an
        // absolute end address.
        let (mem_lo, mem_hi) = if prog.global_extent > 0 {
            (
                layout::GLOBAL_BASE,
                layout::GLOBAL_BASE + prog.global_extent,
            )
        } else {
            (layout::STACK_TOP - 4096, layout::STACK_TOP)
        };
        SampleCtx {
            golden_len,
            prog_len: prog.insts.len(),
            mem_lo,
            mem_hi,
        }
    }

    /// Bits needed to index every static instruction — the bit positions a
    /// PC upset can occupy.
    pub fn pc_bits(&self) -> u32 {
        let max = self.prog_len.saturating_sub(1).max(1) as u64;
        64 - max.leading_zeros()
    }
}

/// One transient-fault model: a seed-stable sampler over a fault space,
/// plus the identity (slug, digest input) campaigns and the store key on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum FaultModel {
    /// The paper's §7.1 model: one bit of one integer register (never the
    /// SP), uniform over slots × [`INJECTABLE_REGS`] × 64 bits. Pinned
    /// draw-for-draw to [`FaultSpec::sample`].
    #[default]
    SeuReg,
    /// Control-flow corruption: one bit of the program counter flips
    /// before a fetch, uniform over slots × [`SampleCtx::pc_bits`]. A
    /// corrupted fetch outside the image is a SEGV.
    PcCorrupt,
    /// Data-memory upset: one bit of one byte in the data segment flips,
    /// uniform over slots × bytes × 8 bits. Relaxes the paper's
    /// ECC-protected-memory assumption.
    MemBit,
    /// Multi-bit upset: an adjacent burst of 2–4 bits in one integer
    /// register, uniform over slots × registers × widths × start
    /// positions.
    MultiBitUpset,
    /// Single-event transient (SET) in the datapath: the result of one
    /// ALU operation is corrupted by one bit (width-truncated; non-ALU
    /// slots latch nothing), uniform over slots × 64 bits.
    TransientAlu,
}

impl FaultModel {
    /// Every model, in presentation order.
    pub const ALL: [FaultModel; 5] = [
        FaultModel::SeuReg,
        FaultModel::PcCorrupt,
        FaultModel::MemBit,
        FaultModel::MultiBitUpset,
        FaultModel::TransientAlu,
    ];

    /// The stable kebab-case identifier used by CLI flags, JSON tags and
    /// store digests.
    pub fn slug(self) -> &'static str {
        match self {
            FaultModel::SeuReg => "seu-reg",
            FaultModel::PcCorrupt => "pc-corrupt",
            FaultModel::MemBit => "mem-bit",
            FaultModel::MultiBitUpset => "multi-bit",
            FaultModel::TransientAlu => "transient-alu",
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            FaultModel::SeuReg => "register SEU",
            FaultModel::PcCorrupt => "PC corruption",
            FaultModel::MemBit => "memory bit upset",
            FaultModel::MultiBitUpset => "multi-bit register upset",
            FaultModel::TransientAlu => "transient ALU (SET)",
        }
    }

    /// Parses a slug (or a forgiving spelling: case-insensitive, `_`/`/`
    /// treated as `-`).
    pub fn parse(s: &str) -> Option<FaultModel> {
        let norm: String = s
            .trim()
            .chars()
            .map(|c| match c {
                '_' | '/' | ' ' => '-',
                c => c.to_ascii_lowercase(),
            })
            .collect();
        FaultModel::ALL.into_iter().find(|m| m.slug() == norm)
    }

    /// Whether this is the default (legacy-pinned) model.
    pub fn is_default(self) -> bool {
        self == FaultModel::SeuReg
    }

    /// Draws one fault uniformly from this model's space.
    ///
    /// Seed-stability contract: for a fixed model and context, the
    /// sequence of draws from a seeded RNG is a stable artifact. `SeuReg`
    /// additionally consumes the RNG *identically* to
    /// [`FaultSpec::sample`], so default-model campaigns reproduce the
    /// historical fault sequences exactly.
    pub fn sample(self, rng: &mut SmallRng, ctx: &SampleCtx) -> GenFault {
        match self {
            FaultModel::SeuReg => GenFault::from_spec(FaultSpec::sample(rng, ctx.golden_len)),
            FaultModel::PcCorrupt => {
                let at = rng.gen_range(0, ctx.golden_len.max(1));
                let bit = rng.gen_range(0, ctx.pc_bits() as u64);
                GenFault::new(at, FaultEffect::PcXor { mask: 1u64 << bit })
            }
            FaultModel::MemBit => {
                let at = rng.gen_range(0, ctx.golden_len.max(1));
                let span = ctx.mem_hi.saturating_sub(ctx.mem_lo).max(1);
                let addr = ctx.mem_lo + rng.gen_range(0, span);
                let bit = rng.gen_range(0, 8) as u8;
                GenFault::new(at, FaultEffect::MemXor { addr, bit })
            }
            FaultModel::MultiBitUpset => {
                let at = rng.gen_range(0, ctx.golden_len.max(1));
                let reg = *rng.choose(&INJECTABLE_REGS);
                let width = 2 + rng.gen_range(0, 3); // 2..=4 adjacent bits
                let start = rng.gen_range(0, 64 - width + 1);
                let mask = ((1u64 << width) - 1) << start;
                GenFault::new(at, FaultEffect::RegXor { reg, mask })
            }
            FaultModel::TransientAlu => {
                let at = rng.gen_range(0, ctx.golden_len.max(1));
                let bit = rng.gen_range(0, 64);
                GenFault::new(at, FaultEffect::AluXor { mask: 1u64 << bit })
            }
        }
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_ir::{NUM_IREGS, SP};

    fn ctx() -> SampleCtx {
        SampleCtx {
            golden_len: 1000,
            prog_len: 700,
            mem_lo: layout::GLOBAL_BASE,
            mem_hi: layout::GLOBAL_BASE + 256,
        }
    }

    /// The load-bearing pin: `SeuReg` consumes the RNG identically to
    /// `FaultSpec::sample`, draw for draw, so every default-model campaign
    /// sequence is unchanged.
    #[test]
    fn seu_reg_sampler_is_pinned_to_fault_spec_sample() {
        let mut a = SmallRng::seed_from_u64(0x5EED);
        let mut b = SmallRng::seed_from_u64(0x5EED);
        let c = ctx();
        for _ in 0..2000 {
            let gen = FaultModel::SeuReg.sample(&mut a, &c);
            let spec = FaultSpec::sample(&mut b, c.golden_len);
            assert_eq!(gen, GenFault::from_spec(spec));
            assert_eq!(gen.as_spec(), Some(spec));
        }
        // And the generators are in the same state afterwards.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn every_model_samples_within_its_space() {
        let c = ctx();
        for model in FaultModel::ALL {
            let mut rng = SmallRng::seed_from_u64(7);
            for _ in 0..500 {
                let f = model.sample(&mut rng, &c);
                assert!(f.at_instr < c.golden_len, "{model}: slot out of range");
                match (model, f.effect) {
                    (FaultModel::SeuReg, FaultEffect::RegXor { reg, mask }) => {
                        assert!((reg as usize) < NUM_IREGS && reg != SP.index());
                        assert_eq!(mask.count_ones(), 1);
                    }
                    (FaultModel::PcCorrupt, FaultEffect::PcXor { mask }) => {
                        assert_eq!(mask.count_ones(), 1);
                        assert!(mask.trailing_zeros() < c.pc_bits());
                    }
                    (FaultModel::MemBit, FaultEffect::MemXor { addr, bit }) => {
                        assert!((c.mem_lo..c.mem_hi).contains(&addr));
                        assert!(bit < 8);
                    }
                    (FaultModel::MultiBitUpset, FaultEffect::RegXor { reg, mask }) => {
                        assert!((reg as usize) < NUM_IREGS && reg != SP.index());
                        let ones = mask.count_ones();
                        assert!((2..=4).contains(&ones), "burst width {ones}");
                        // Adjacent: the set bits form one contiguous run.
                        let shifted = mask >> mask.trailing_zeros();
                        assert_eq!(shifted, (1u64 << ones) - 1, "burst not contiguous");
                    }
                    (FaultModel::TransientAlu, FaultEffect::AluXor { mask }) => {
                        assert_eq!(mask.count_ones(), 1);
                    }
                    (m, e) => panic!("{m} drew unexpected effect {e:?}"),
                }
            }
        }
    }

    #[test]
    fn slugs_parse_round_trip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for m in FaultModel::ALL {
            assert!(seen.insert(m.slug()));
            assert_eq!(FaultModel::parse(m.slug()), Some(m));
            assert_eq!(FaultModel::parse(&m.slug().to_uppercase()), Some(m));
            assert_eq!(FaultModel::parse(&m.slug().replace('-', "_")), Some(m));
        }
        assert_eq!(FaultModel::parse("bogus"), None);
        assert_eq!(FaultModel::default(), FaultModel::SeuReg);
        assert!(FaultModel::SeuReg.is_default());
    }

    #[test]
    fn pc_bits_covers_the_image() {
        let mut c = ctx();
        c.prog_len = 1;
        assert_eq!(c.pc_bits(), 1);
        c.prog_len = 700;
        assert_eq!(c.pc_bits(), 10); // 699 needs 10 bits
        c.prog_len = 1024;
        assert_eq!(c.pc_bits(), 10);
        c.prog_len = 1025;
        assert_eq!(c.pc_bits(), 11);
    }

    /// `global_extent` is a segment *size*, not an end address; a program
    /// with globals must sample memory faults inside
    /// `[GLOBAL_BASE, GLOBAL_BASE + extent)`, never the stack-page
    /// fallback (the regression here had every mem-bit flip landing on a
    /// dead stack page, classifying 100% unACE).
    #[test]
    fn for_program_targets_the_global_segment() {
        let prog = sor_ir::Program {
            name: "g".into(),
            insts: vec![],
            roles: vec![],
            entry: 0,
            globals: vec![],
            global_extent: 640,
        };
        let c = SampleCtx::for_program(&prog, 100);
        assert_eq!(c.mem_lo, layout::GLOBAL_BASE);
        assert_eq!(c.mem_hi, layout::GLOBAL_BASE + 640);

        let none = sor_ir::Program {
            global_extent: 0,
            ..prog
        };
        let c = SampleCtx::for_program(&none, 100);
        assert_eq!(c.mem_hi, layout::STACK_TOP);
        assert_eq!(c.mem_hi - c.mem_lo, 4096);
    }

    #[test]
    fn samplers_are_seed_stable() {
        let c = ctx();
        for m in FaultModel::ALL {
            let mut a = SmallRng::seed_from_u64(42);
            let mut b = SmallRng::seed_from_u64(42);
            let fa: Vec<GenFault> = (0..100).map(|_| m.sample(&mut a, &c)).collect();
            let fb: Vec<GenFault> = (0..100).map(|_| m.sample(&mut b, &c)).collect();
            assert_eq!(fa, fb, "{m}");
        }
    }
}
