//! Shared JSON renderers for campaign artifacts.
//!
//! The `certify` / `triage` batch bins and the `sor-server` job executor
//! must emit **byte-identical** `results/*.json` files for the same
//! logical result — that pin is what keeps the service honest against
//! the batch oracle. The only way to guarantee it is to render through
//! one function, so the exact `format!` strings live here and both
//! consumers call them.

use sor_ace::CertifiedCoverage;
use sor_ir::Program;
use sor_models::FaultModel;
use std::fmt::Display;

use crate::triage::TriagedCampaign;

/// The optional `"fault_model"` JSON line: empty under the default model
/// — keeping every legacy document byte-identical — and one
/// slug-carrying line for generalized models, so downstream consumers
/// can never mistake a pc-corrupt sweep for a register-SEU one.
fn model_tag(model: FaultModel) -> String {
    if model.is_default() {
        String::new()
    } else {
        format!("  \"fault_model\": \"{}\",\n", model.slug())
    }
}

/// Lowercase filename slug for a technique ("TRUMP/SWIFT-R" → "trump-swift-r").
pub fn technique_slug(technique: impl Display) -> String {
    technique
        .to_string()
        .to_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// Renders a certified-coverage report as the `certified_<slug>.json`
/// document the `certify` bin writes (default fault model).
pub fn certified_json(r: &CertifiedCoverage) -> String {
    certified_json_model(r, FaultModel::SeuReg)
}

/// [`certified_json`] with an explicit fault model: non-default models
/// add a `"fault_model"` tag after `"technique"`; the default renders
/// byte-identically to the legacy document.
pub fn certified_json_model(r: &CertifiedCoverage, model: FaultModel) -> String {
    let roles: Vec<String> = r
        .roles
        .iter()
        .map(|(role, c)| {
            format!(
                "    {{\"role\": \"{role}\", \"sites\": {}, \"unace\": {}, \
                 \"sdc\": {}, \"segv\": {}, \"detected\": {}, \"hang\": {}, \
                 \"recoveries\": {}}}",
                c.total(),
                c.unace,
                c.sdc,
                c.segv,
                c.detected,
                c.hang,
                c.recoveries,
            )
        })
        .collect();
    let c = r.counts;
    format!(
        "{{\n  \"workload\": \"{}\",\n  \"technique\": \"{}\",\n{}  \
         \"golden_instrs\": {},\n  \"total_sites\": {},\n  \
         \"dead_sites\": {},\n  \"live_sites\": {},\n  \"classes\": {},\n  \
         \"injections_executed\": {},\n  \"pruning_factor\": {:.2},\n  \
         \"counts\": {{\"unace\": {}, \"sdc\": {}, \"segv\": {}, \
         \"detected\": {}, \"hang\": {}, \"recoveries\": {}}},\n  \
         \"unace_pct\": {:.4},\n  \"segv_pct\": {:.4},\n  \"sdc_pct\": {:.4},\n  \
         \"roles\": [\n{}\n  ]\n}}\n",
        r.workload,
        r.technique,
        model_tag(model),
        r.golden_instrs,
        r.total_sites,
        r.dead_sites,
        r.live_sites,
        r.classes,
        r.injections_executed,
        r.pruning_factor(),
        c.unace,
        c.sdc,
        c.segv,
        c.detected,
        c.hang,
        c.recoveries,
        c.pct_unace(),
        c.pct_segv(),
        c.pct_sdc(),
        roles.join(",\n"),
    )
}

/// Renders a triaged campaign as the `triage_<slug>.json` document the
/// `triage` bin writes (default fault model). `program` supplies the
/// disassembly for each fault site; `runs` is the configured injection
/// budget.
pub fn triage_json(t: &TriagedCampaign, program: &Program, runs: u64) -> String {
    triage_json_model(t, program, runs, FaultModel::SeuReg)
}

/// [`triage_json`] with an explicit fault model; same tagging contract as
/// [`certified_json_model`].
pub fn triage_json_model(
    t: &TriagedCampaign,
    program: &Program,
    runs: u64,
    model: FaultModel,
) -> String {
    let mut sites = String::new();
    for (i, (pc, s)) in t.profile.top_vulnerable(usize::MAX).into_iter().enumerate() {
        let (lo, hi) = s.counts.sdc_ci95();
        if i > 0 {
            sites.push_str(",\n");
        }
        sites.push_str(&format!(
            "    {{\"pc\": {pc}, \"inst\": \"{}\", \"role\": \"{}\", \
             \"injections\": {}, \"sdc\": {}, \"sdc_pct\": {:.2}, \
             \"ci_lo\": {lo:.2}, \"ci_hi\": {hi:.2}}}",
            program.insts[pc],
            s.role,
            s.counts.total(),
            s.counts.sdc + s.counts.hang,
            s.counts.pct_sdc(),
        ));
    }
    let c = t.result.counts;
    format!(
        "{{\n  \"workload\": \"{}\",\n  \"technique\": \"{}\",\n{}  \
         \"runs\": {runs},\n  \"golden_instrs\": {},\n  \
         \"counts\": {{\"unace\": {}, \"sdc\": {}, \"segv\": {}, \
         \"detected\": {}, \"hang\": {}, \"recoveries\": {}}},\n  \
         \"sites\": [\n{sites}\n  ]\n}}\n",
        t.result.workload,
        t.result.technique,
        model_tag(model),
        t.result.golden_instrs,
        c.unace,
        c.sdc,
        c.segv,
        c.detected,
        c.hang,
        c.recoveries,
    )
}
