//! Exhaustive certified campaigns (the `sor-ace` execution driver).
//!
//! A certified campaign classifies *every* fault site of the cube
//! `golden_len x injectable registers x 64 bits` — no sampling, no
//! confidence interval. The `sor-ace` analysis prunes sites whose flip is
//! provably clobbered before it can be read and collapses the rest into
//! read-window equivalence classes; only one injection per bit per class
//! is executed, riding the same checkpoint-and-replay machines and
//! work-stealing worker pool as the sampled campaigns. The assembled
//! [`CertifiedCoverage`] is bit-for-bit what brute-force injection of
//! every single site would report (outcome histogram, per-site and
//! per-role attribution) — the oracle tests below pin exactly that.

use crate::artifact::ArtifactStore;
use crate::ctrl::RunCtrl;
use crate::pool;
use crate::store::ResultStore;
use sor_ace::{
    CertPlan, CertSections, CertifiedCoverage, ClassOutcome, DefUseTrace, GenCertPlan,
    ModelPlanError, SectionOutcomes,
};
use sor_core::Technique;
use sor_ir::Program;
use sor_models::FaultModel;
use sor_regalloc::LowerConfig;
use sor_sim::{DecodedProg, ExecEngine, FaultSpec, GenFault, JitProg, MachineConfig};
use sor_stats::OutcomeCounts;
use sor_workloads::Workload;
use std::sync::Arc;

/// Certified-campaign parameters.
#[derive(Debug, Clone)]
pub struct CertifyConfig {
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// Golden-run checkpoint interval (see
    /// [`MachineConfig::checkpoint_interval`]).
    pub checkpoint_interval: u64,
    /// SPMD lane width for batched injection (see
    /// [`sor_sim::LaneReplayer`]): each read-window equivalence class is
    /// 64 same-slot faults, which lane groups of width 2/4/8 tile
    /// exactly. `1` (the default) runs scalar; results are bit-identical
    /// either way.
    pub lanes: usize,
    /// Transform configuration.
    pub transform: sor_core::TransformConfig,
    /// Contiguous dynamic-slot sections the incremental path
    /// ([`certify_incremental`]) splits the plan into — the granularity of
    /// [`ResultStore`] reuse. Irrelevant to the monolithic entry points,
    /// and results are bit-identical for every value (the incremental
    /// tests pin this); more sections = finer partial reuse, slightly
    /// more store records.
    pub sections: usize,
    /// Fault model to certify (see [`FaultModel`]). The default,
    /// [`FaultModel::SeuReg`], runs the legacy exhaustive pipeline
    /// bit-identically. Non-default models certify through
    /// [`sor_ace::GenCertPlan`] — monolithic, scalar, store-bypassing
    /// (the sectional store format only encodes the SEU plan shape, and a
    /// wrong reuse would be silent). [`FaultModel::MemBit`] is not
    /// certifiable (no per-address liveness argument) and panics with
    /// [`ModelPlanError::NotCertifiable`]'s message; use a sampled
    /// campaign for it.
    pub fault_model: FaultModel,
    /// Execution engine for the golden run and every injection (see
    /// [`ExecEngine`]). All three engines are bit-identical by contract —
    /// the differential tests pin it — so this is a throughput knob, not a
    /// semantic one; [`ExecEngine::Jit`] degrades to the decoded
    /// interpreter where native compilation is unavailable.
    pub engine: ExecEngine,
}

impl Default for CertifyConfig {
    fn default() -> Self {
        CertifyConfig {
            threads: 0,
            checkpoint_interval: MachineConfig::AUTO_CHECKPOINT,
            lanes: 1,
            transform: sor_core::TransformConfig::default(),
            sections: 8,
            fault_model: FaultModel::SeuReg,
            engine: ExecEngine::default(),
        }
    }
}

/// Transforms and lowers `workload` under `technique`, then certifies its
/// entire fault space exactly.
pub fn run_certified_campaign(
    workload: &dyn Workload,
    technique: Technique,
    cfg: &CertifyConfig,
) -> CertifiedCoverage {
    run_certified_campaign_in(&ArtifactStore::new(), workload, technique, cfg)
}

/// [`run_certified_campaign`] with program preparation served from a
/// shared [`ArtifactStore`].
pub fn run_certified_campaign_in(
    store: &ArtifactStore,
    workload: &dyn Workload,
    technique: Technique,
    cfg: &CertifyConfig,
) -> CertifiedCoverage {
    let artifact = store.get(workload, technique, &cfg.transform, &LowerConfig::default());
    if !cfg.fault_model.is_default() {
        return certify_program_model(
            &artifact.program,
            Some(Arc::clone(&artifact.decoded)),
            artifact.jit_for(cfg.engine),
            workload.name(),
            &technique.to_string(),
            cfg.fault_model,
            cfg.threads,
            cfg.checkpoint_interval,
            cfg.engine,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }
    certify_program_with(
        &artifact.program,
        Some(Arc::clone(&artifact.decoded)),
        artifact.jit_for(cfg.engine),
        workload.name(),
        &technique.to_string(),
        cfg.threads,
        cfg.checkpoint_interval,
        cfg.lanes,
        cfg.engine,
    )
}

/// Certifies one lowered program's full fault space: records the def-use
/// trace, builds the pruning plan, executes the surviving class
/// representatives across a work-stealing worker pool, and assembles the
/// exact coverage report.
///
/// Results are independent of `threads`: workers fill a per-class result
/// slot, and assembly walks classes in plan order.
pub fn certify_program(
    program: &Program,
    workload: &str,
    technique: &str,
    threads: usize,
    checkpoint_interval: u64,
) -> CertifiedCoverage {
    certify_program_with(
        program,
        None,
        None,
        workload,
        technique,
        threads,
        checkpoint_interval,
        1,
        ExecEngine::default(),
    )
}

/// [`certify_program`] reusing already-prepared images — the predecoded
/// program and (under [`ExecEngine::Jit`]) the compiled native image,
/// both memoized per lowered program by the artifact store — instead of
/// translating again.
#[allow(clippy::too_many_arguments)]
pub fn certify_program_with(
    program: &Program,
    decoded: Option<Arc<DecodedProg>>,
    jit: Option<Arc<JitProg>>,
    workload: &str,
    technique: &str,
    threads: usize,
    checkpoint_interval: u64,
    lanes: usize,
    engine: ExecEngine,
) -> CertifiedCoverage {
    let runner = pool::build_runner(program, decoded, jit, checkpoint_interval, engine);
    let trace = DefUseTrace::record(&runner);
    let plan = CertPlan::build(&trace);
    let golden_recoveries =
        runner.golden().probes.vote_repairs + runner.golden().probes.trump_recovers;

    // The plan flattens to 64 same-slot faults per read-window class; the
    // shared pool work-steals them (scalar) or their lane groups, which
    // tile classes exactly (64 % lane width == 0). Folding by class index
    // keeps per-class slots exact, so the report is identical for any
    // thread count or lane width — windows ending late in the run replay
    // long suffixes, so classes, like sampled faults, have wildly
    // variable costs and still want stealing.
    let faults: Vec<FaultSpec> = plan
        .classes
        .iter()
        .flat_map(|range| (0..64).map(|bit| FaultSpec::new(range.hi, range.reg, bit)))
        .collect();
    let mut class_results: Vec<OutcomeCounts> = pool::inject_faults(
        &runner,
        &faults,
        threads,
        lanes,
        |acc: &mut Vec<OutcomeCounts>, i, rec, res| {
            let class = i / 64;
            if acc.len() <= class {
                acc.resize(class + 1, OutcomeCounts::default());
            }
            acc[class].record(
                rec.outcome,
                res.probes.vote_repairs + res.probes.trump_recovers,
            );
        },
    );
    class_results.resize(plan.classes.len(), OutcomeCounts::default());

    CertifiedCoverage::assemble(
        workload,
        technique,
        program,
        &trace,
        &plan,
        &class_results,
        golden_recoveries,
    )
}

/// Certifies one lowered program's full fault space under a non-default
/// [`FaultModel`], exactly: records the def-use trace, builds the
/// model-specific [`GenCertPlan`] (per-model unACE arguments — see
/// `sor_ace::models` and DESIGN.md §16), executes every class effect
/// across the work-stealing pool, and assembles the exact coverage
/// report. `Err(ModelPlanError::NotCertifiable)` for models with no sound
/// pruning argument ([`FaultModel::MemBit`]).
///
/// The default model is accepted too (its plan reproduces the legacy
/// [`CertPlan`] exactly), but [`certify_program_with`] is the pinned
/// legacy path campaigns should take for it.
#[allow(clippy::too_many_arguments)]
pub fn certify_program_model(
    program: &Program,
    decoded: Option<Arc<DecodedProg>>,
    jit: Option<Arc<JitProg>>,
    workload: &str,
    technique: &str,
    model: FaultModel,
    threads: usize,
    checkpoint_interval: u64,
    engine: ExecEngine,
) -> Result<CertifiedCoverage, ModelPlanError> {
    let runner = pool::build_runner(program, decoded, jit, checkpoint_interval, engine);
    let trace = DefUseTrace::record(&runner);
    let plan = GenCertPlan::build(model, program, &trace)?;
    let golden_recoveries =
        runner.golden().probes.vote_repairs + runner.golden().probes.trump_recovers;

    // Classes carry model-specific effect lists of varying length, so the
    // flattened fault list carries a parallel class-index map instead of
    // the SEU path's fixed /64 stride.
    let mut faults: Vec<GenFault> = Vec::new();
    let mut class_of: Vec<usize> = Vec::new();
    for (ci, class) in plan.classes.iter().enumerate() {
        faults.extend(class.faults());
        class_of.extend(std::iter::repeat_n(ci, class.effects.len()));
    }
    let mut class_results: Vec<OutcomeCounts> = pool::inject_gen_faults(
        &runner,
        &faults,
        threads,
        |acc: &mut Vec<OutcomeCounts>, i, rec, res| {
            let class = class_of[i];
            if acc.len() <= class {
                acc.resize(class + 1, OutcomeCounts::default());
            }
            acc[class].record(
                rec.outcome,
                res.probes.vote_repairs + res.probes.trump_recovers,
            );
        },
    );
    class_results.resize(plan.classes.len(), OutcomeCounts::default());

    Ok(plan.assemble(
        workload,
        technique,
        program,
        &trace,
        &class_results,
        golden_recoveries,
    ))
}

/// An incrementally assembled certification: the exact coverage report
/// plus how much of it came from the [`ResultStore`].
#[derive(Debug, Clone)]
pub struct IncrementalCertification {
    /// The assembled report — bit-identical to what the monolithic
    /// [`certify_program`] returns for the same program.
    pub coverage: CertifiedCoverage,
    /// Sections the plan was split into.
    pub sections_total: usize,
    /// Sections served from the store without executing anything.
    pub sections_hit: usize,
    /// Injections actually executed by *this* run (0 on a fully warm
    /// store; `coverage.injections_executed` counts the whole plan).
    pub fresh_injections: u64,
}

/// [`run_certified_campaign_in`] through the incremental path: program
/// preparation served from `artifacts`, executed section results served
/// from (and inserted into) `results`.
pub fn run_certified_campaign_stored(
    artifacts: &ArtifactStore,
    results: &ResultStore,
    workload: &dyn Workload,
    technique: Technique,
    cfg: &CertifyConfig,
) -> IncrementalCertification {
    let artifact = artifacts.get(workload, technique, &cfg.transform, &LowerConfig::default());
    certify_incremental(
        results,
        &artifact.program,
        Some(Arc::clone(&artifact.decoded)),
        artifact.jit_for(cfg.engine),
        workload.name(),
        &technique.to_string(),
        cfg,
    )
}

/// Certifies a program's full fault space, reusing previously executed
/// sections from `results` and executing only the rest.
///
/// The golden run, def-use trace and pruning plan are always recomputed
/// fresh — they are cheap (one fault-free pass) and they are what the
/// cached results are validated *against*: the plan is partitioned into
/// [`CertSections`] whose keys digest the program, each section's def-use
/// slice and the fault model, and only a section whose key matches a
/// stored entry (and whose stored class tags line up with the fresh plan)
/// skips execution. The assembled [`CertifiedCoverage`] is bit-identical
/// to the monolithic [`certify_program`] whatever mix of cached and fresh
/// sections it was composed from — labels (`workload`, `technique`) are
/// applied at assembly and never cached, so renames cannot poison the
/// store.
#[allow(clippy::too_many_arguments)]
pub fn certify_incremental(
    results: &ResultStore,
    program: &Program,
    decoded: Option<Arc<DecodedProg>>,
    jit: Option<Arc<JitProg>>,
    workload: &str,
    technique: &str,
    cfg: &CertifyConfig,
) -> IncrementalCertification {
    match certify_resumable(
        results,
        program,
        decoded,
        jit,
        workload,
        technique,
        cfg,
        None,
        &mut |_| {},
    ) {
        CertifyStatus::Done(inc) => inc,
        CertifyStatus::Paused(_) => unreachable!("no control, so the driver never pauses"),
    }
}

/// A snapshot of a resumable certification's position, emitted after
/// every resolved section (and carried by [`CertifyStatus::Paused`]).
///
/// `counts` aggregates the outcome histograms of every section resolved
/// so far — cached and fresh — so a client watching a campaign sees the
/// classified fraction (and its Wilson interval, via
/// [`OutcomeCounts::sdc_ci95`]) converge section by section toward the
/// exact final report.
#[derive(Debug, Clone, Default)]
pub struct CertifyProgress {
    /// Sections resolved so far (cached hits + freshly executed).
    pub sections_done: usize,
    /// Sections the plan was split into.
    pub sections_total: usize,
    /// Sections served from the store without executing anything.
    pub sections_hit: usize,
    /// Injections executed by this run so far.
    pub fresh_injections: u64,
    /// Injections represented by the resolved sections (executed now or
    /// by whichever earlier run populated the store).
    pub injections_resolved: u64,
    /// Outcome histogram aggregated over every resolved section.
    pub counts: OutcomeCounts,
}

/// What a resumable certification run ended as.
#[derive(Debug, Clone)]
pub enum CertifyStatus {
    /// Every section resolved; the assembled report is exact and
    /// bit-identical to the monolithic path.
    Done(IncrementalCertification),
    /// A stop was requested: completed sections are persisted in the
    /// store, and re-invoking with the same arguments resumes from here.
    Paused(CertifyProgress),
}

/// [`certify_incremental`], pausable at section boundaries.
///
/// Missing sections execute one at a time, each persisted to `results`
/// the moment it completes, with `on_progress` fired after every resolved
/// section. When `ctrl` requests a stop the driver returns
/// [`CertifyStatus::Paused`] before starting the next section — nothing
/// in flight is lost, and calling again with the same store picks up
/// exactly where it left off (the finished sections come back as hits).
/// The composed report is bit-identical to [`certify_program`] no matter
/// how many pause/resume cycles it took.
#[allow(clippy::too_many_arguments)]
pub fn certify_resumable(
    results: &ResultStore,
    program: &Program,
    decoded: Option<Arc<DecodedProg>>,
    jit: Option<Arc<JitProg>>,
    workload: &str,
    technique: &str,
    cfg: &CertifyConfig,
    ctrl: Option<&RunCtrl>,
    on_progress: &mut dyn FnMut(&CertifyProgress),
) -> CertifyStatus {
    if !cfg.fault_model.is_default() {
        // Non-default models certify monolithically and never touch the
        // store: the sectional record format encodes the SEU plan's class
        // shape only, and serving a generalized plan from it would be a
        // silent mismatch. One all-or-nothing "section", no pause grain.
        let coverage = certify_program_model(
            program,
            decoded,
            jit,
            workload,
            technique,
            cfg.fault_model,
            cfg.threads,
            cfg.checkpoint_interval,
            cfg.engine,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        let progress = CertifyProgress {
            sections_done: 1,
            sections_total: 1,
            sections_hit: 0,
            fresh_injections: coverage.injections_executed,
            injections_resolved: coverage.injections_executed,
            counts: coverage.counts,
        };
        on_progress(&progress);
        return CertifyStatus::Done(IncrementalCertification {
            coverage,
            sections_total: 1,
            sections_hit: 0,
            fresh_injections: progress.fresh_injections,
        });
    }
    let runner = pool::build_runner(program, decoded, jit, cfg.checkpoint_interval, cfg.engine);
    let trace = DefUseTrace::record(&runner);
    let plan = CertPlan::build(&trace);
    let golden_recoveries =
        runner.golden().probes.vote_repairs + runner.golden().probes.trump_recovers;
    let sections = CertSections::partition(program, &trace, &plan, cfg.sections);

    // Probe the store section by section. A cached entry must mirror the
    // freshly built plan exactly — same class count, same (register,
    // representative) tags — or it is discarded as a collision/drift
    // casualty and recomputed.
    let mut per_section: Vec<Option<Arc<SectionOutcomes>>> = sections
        .sections
        .iter()
        .map(|sec| {
            results.get_cert(&sec.key, |cached| {
                cached.classes.len() == sec.classes.len()
                    && sec.classes.iter().zip(&cached.classes).all(|(&idx, out)| {
                        let class = &plan.classes[idx];
                        class.reg == out.reg && class.hi == out.rep
                    })
            })
        })
        .collect();

    let mut progress = CertifyProgress {
        sections_total: sections.sections.len(),
        ..CertifyProgress::default()
    };
    for resolved in per_section.iter().flatten() {
        progress.sections_done += 1;
        progress.sections_hit += 1;
        absorb_section(&mut progress, resolved);
    }
    on_progress(&progress);

    // Execute the missing sections one at a time, persisting each as it
    // completes — the pause grain. (The monolithic path used to flatten
    // all missing sections into one fault list for marginally better
    // steal balance; per-section execution keeps every result identical
    // while making "stop after the section in flight" a well-defined
    // point that loses no work.)
    for (si, slot) in per_section.iter_mut().enumerate() {
        if slot.is_some() {
            continue;
        }
        if ctrl.is_some_and(|c| c.stop_requested()) {
            return CertifyStatus::Paused(progress);
        }
        let sec = &sections.sections[si];
        let faults: Vec<FaultSpec> = sec
            .classes
            .iter()
            .map(|&idx| plan.classes[idx])
            .flat_map(|range| (0..64).map(move |bit| FaultSpec::new(range.hi, range.reg, bit)))
            .collect();
        progress.fresh_injections += faults.len() as u64;
        let mut fresh: Vec<OutcomeCounts> = pool::inject_faults(
            &runner,
            &faults,
            cfg.threads,
            cfg.lanes,
            |acc: &mut Vec<OutcomeCounts>, i, rec, res| {
                let class = i / 64;
                if acc.len() <= class {
                    acc.resize(class + 1, OutcomeCounts::default());
                }
                acc[class].record(
                    rec.outcome,
                    res.probes.vote_repairs + res.probes.trump_recovers,
                );
            },
        );
        fresh.resize(sec.classes.len(), OutcomeCounts::default());
        let classes: Vec<ClassOutcome> = sec
            .classes
            .iter()
            .zip(fresh)
            .map(|(&idx, counts)| ClassOutcome {
                reg: plan.classes[idx].reg,
                rep: plan.classes[idx].hi,
                counts,
            })
            .collect();
        let stored = results.put_cert(sec.key, SectionOutcomes { classes });
        progress.sections_done += 1;
        absorb_section(&mut progress, &stored);
        *slot = Some(stored);
        on_progress(&progress);
    }

    let resolved: Vec<SectionOutcomes> = per_section
        .into_iter()
        .map(|s| (*s.expect("every section cached or freshly executed")).clone())
        .collect();
    let class_results = sections
        .scatter(&plan, &resolved)
        .expect("validated sections always scatter");
    let coverage = CertifiedCoverage::assemble(
        workload,
        technique,
        program,
        &trace,
        &plan,
        &class_results,
        golden_recoveries,
    );
    CertifyStatus::Done(IncrementalCertification {
        coverage,
        sections_total: sections.sections.len(),
        sections_hit: progress.sections_hit,
        fresh_injections: progress.fresh_injections,
    })
}

/// Folds one resolved section's class histograms into a progress snapshot.
fn absorb_section(progress: &mut CertifyProgress, section: &SectionOutcomes) {
    for class in &section.classes {
        progress.counts += class.counts;
        progress.injections_resolved += 64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_ir::{MemWidth, ModuleBuilder, Operand, ProtectionRole, Width};
    use sor_regalloc::lower;
    use sor_sim::{Runner, INJECTABLE_REGS};
    use std::collections::BTreeMap;

    /// Micro workload 1: a pure arithmetic chain — registers carry live
    /// values across several instructions.
    fn chain_program(technique: Technique) -> Program {
        let mut mb = ModuleBuilder::new("chain");
        let mut f = mb.function("main");
        let a = f.movi(11);
        let b = f.mul(Width::W64, a, 3i64);
        let c = f.add(Width::W64, b, a);
        let d = f.xor(Width::W64, c, 0x5Ai64);
        f.emit(Operand::reg(d));
        f.ret(&[]);
        let id = f.finish();
        lower(&technique.apply(&mb.finish(id)), &LowerConfig::default()).unwrap()
    }

    /// Micro workload 2: memory traffic and control flow — a global
    /// round-trip plus a select, so faults can turn into SEGVs.
    fn mem_program(technique: Technique) -> Program {
        let mut mb = ModuleBuilder::new("memsel");
        let g = mb.alloc_global_u64s("g", &[9, 0]);
        let mut f = mb.function("main");
        let base = f.movi(g as i64);
        let x = f.load(MemWidth::B8, base, 0);
        let y = f.add(Width::W64, x, 5i64);
        f.store(MemWidth::B8, base, 8, y);
        let back = f.load(MemWidth::B8, base, 8);
        let cond = f.cmp(sor_ir::CmpOp::LtS, Width::W64, back, 100i64);
        let z = f.select(cond, back, x);
        f.emit(Operand::reg(z));
        f.ret(&[]);
        let id = f.finish();
        lower(&technique.apply(&mb.finish(id)), &LowerConfig::default()).unwrap()
    }

    /// Injects every single (slot, register, bit) site, from scratch,
    /// aggregating exactly what `CertifiedCoverage` reports.
    fn brute_force(
        program: &Program,
    ) -> (
        OutcomeCounts,
        BTreeMap<usize, OutcomeCounts>,
        BTreeMap<ProtectionRole, OutcomeCounts>,
        u64,
    ) {
        let runner = Runner::new(program, &MachineConfig::default());
        let golden_len = runner.golden().dyn_instrs;
        let mut replayer = runner.replayer();
        let mut counts = OutcomeCounts::default();
        let mut sites: BTreeMap<usize, OutcomeCounts> = BTreeMap::new();
        let mut roles: BTreeMap<ProtectionRole, OutcomeCounts> = BTreeMap::new();
        for at in 0..golden_len {
            for &reg in &INJECTABLE_REGS {
                for bit in 0..64 {
                    let (rec, res) = replayer.run_fault_record(FaultSpec::new(at, reg, bit));
                    let recov = res.probes.vote_repairs + res.probes.trump_recovers;
                    counts.record(rec.outcome, recov);
                    let pc = rec.static_inst.expect("in-range faults always fire");
                    sites.entry(pc).or_default().record(rec.outcome, recov);
                    roles
                        .entry(rec.role)
                        .or_default()
                        .record(rec.outcome, recov);
                }
            }
        }
        (counts, sites, roles, golden_len)
    }

    /// The acceptance-criteria oracle: on two workloads x three
    /// techniques, the pruned + class-collapsed certification equals
    /// brute-force all-sites injection bit-for-bit — the whole outcome
    /// histogram (recoveries included), the per-site map and the per-role
    /// map — while executing >= 5x fewer injections.
    #[test]
    fn certification_equals_brute_force_bit_for_bit() {
        for technique in [Technique::SwiftR, Technique::Trump, Technique::Swift] {
            for (name, program) in [
                ("chain", chain_program(technique)),
                ("memsel", mem_program(technique)),
            ] {
                let certified = certify_program(&program, name, &technique.to_string(), 2, 3);
                let (counts, sites, roles, golden_len) = brute_force(&program);
                let label = format!("{name}/{technique}");
                assert_eq!(certified.golden_instrs, golden_len, "{label}");
                assert_eq!(
                    certified.total_sites,
                    golden_len * INJECTABLE_REGS.len() as u64 * 64,
                    "{label}"
                );
                assert_eq!(certified.counts, counts, "{label}: histogram diverged");
                assert_eq!(certified.sites, sites, "{label}: per-site map diverged");
                assert_eq!(certified.roles, roles, "{label}: per-role map diverged");
                assert!(
                    certified.injections_executed * 5 <= certified.total_sites,
                    "{label}: only {}x pruning",
                    certified.pruning_factor()
                );
            }
        }
    }

    /// Certified reports are a pure function of the program: thread count
    /// and checkpoint interval must not change a single field.
    #[test]
    fn certification_is_execution_strategy_independent() {
        let program = mem_program(Technique::SwiftR);
        let reference = certify_program(&program, "memsel", "SWIFT-R", 1, 0);
        for (threads, interval) in [(4, 0), (1, 5), (3, MachineConfig::AUTO_CHECKPOINT)] {
            let r = certify_program(&program, "memsel", "SWIFT-R", threads, interval);
            assert_eq!(r, reference, "{threads} threads / interval {interval}");
        }
    }

    /// Model-aware certification through the driver equals brute-force
    /// injection of the model's whole fault space, bit for bit — PC
    /// corruption on a register-recovery technique and on the
    /// control-flow checker it was built to exercise.
    #[test]
    fn pc_corruption_certification_equals_brute_force() {
        for technique in [Technique::SwiftR, Technique::Cfcss] {
            let program = mem_program(technique);
            let certified = certify_program_model(
                &program,
                None,
                None,
                "memsel",
                &technique.to_string(),
                FaultModel::PcCorrupt,
                2,
                3,
                ExecEngine::default(),
            )
            .unwrap();
            let runner = Runner::new(&program, &MachineConfig::default());
            let golden_len = runner.golden().dyn_instrs;
            let pc_bits = sor_models::SampleCtx::for_program(&program, golden_len).pc_bits();
            let mut replayer = runner.replayer();
            let mut counts = OutcomeCounts::default();
            for at in 0..golden_len {
                for bit in 0..pc_bits {
                    let (o, res) = replayer.run_fault_gen(GenFault::new(
                        at,
                        sor_sim::FaultEffect::PcXor { mask: 1u64 << bit },
                    ));
                    counts.record(o, res.probes.vote_repairs + res.probes.trump_recovers);
                }
            }
            let label = format!("memsel/{technique}");
            assert_eq!(
                certified.total_sites,
                golden_len * pc_bits as u64,
                "{label}"
            );
            assert_eq!(certified.counts, counts, "{label}: histogram diverged");
        }
    }

    /// The acceptance-criteria coordinate: `certify --fault-model
    /// pc-corrupt` on adpcmdec under SWIFT-R and CFCSS produces an exact,
    /// thread-count-independent certified report, and CFCSS converts PC
    /// upsets into detections.
    #[test]
    fn adpcmdec_pc_corruption_certifies_exactly() {
        let w = sor_workloads::AdpcmDec {
            samples: 4,
            seed: 1,
        };
        let store = ArtifactStore::new();
        for technique in [Technique::SwiftR, Technique::Cfcss] {
            let cfg = CertifyConfig {
                threads: 2,
                fault_model: FaultModel::PcCorrupt,
                ..CertifyConfig::default()
            };
            let r = run_certified_campaign_in(&store, &w, technique, &cfg);
            assert_eq!(r.workload, "adpcmdec");
            assert_eq!(r.counts.total(), r.total_sites, "{technique}");
            assert_eq!(r.dead_sites + r.live_sites, r.total_sites, "{technique}");
            let single = run_certified_campaign_in(
                &store,
                &w,
                technique,
                &CertifyConfig { threads: 1, ..cfg },
            );
            assert_eq!(r, single, "{technique}: thread count changed the report");
            if technique == Technique::Cfcss {
                assert!(r.counts.detected > 0, "CFCSS must detect wild jumps");
            }
        }
    }

    /// MemBit has no sound per-address liveness argument, so certification
    /// refuses it with actionable guidance instead of guessing.
    #[test]
    fn mem_bit_certification_is_rejected_with_guidance() {
        let program = chain_program(Technique::SwiftR);
        let err = certify_program_model(
            &program,
            None,
            None,
            "chain",
            "SWIFT-R",
            FaultModel::MemBit,
            1,
            0,
            ExecEngine::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("sampled campaign"), "{err}");
    }

    /// End-to-end workload entry point: totals tile the cube, the store
    /// serves the artifact, and protection roles appear in the
    /// attribution.
    #[test]
    fn certified_campaign_runs_on_a_workload() {
        let w = sor_workloads::AdpcmDec {
            samples: 4,
            seed: 1,
        };
        let store = ArtifactStore::new();
        let cfg = CertifyConfig {
            threads: 2,
            ..CertifyConfig::default()
        };
        let r = run_certified_campaign_in(&store, &w, Technique::SwiftR, &cfg);
        assert_eq!(r.workload, "adpcmdec");
        assert_eq!(r.technique, "SWIFT-R");
        assert_eq!(r.counts.total(), r.total_sites);
        assert_eq!(r.dead_sites + r.live_sites, r.total_sites);
        assert_eq!(r.injections_executed, r.classes * 64);
        assert!(r.pruning_factor() >= 5.0, "only {}x", r.pruning_factor());
        let role_total: u64 = r.roles.values().map(|c| c.total()).sum();
        assert_eq!(role_total, r.total_sites);
        assert!(
            r.roles
                .keys()
                .any(|role| matches!(role, ProtectionRole::Redundant { .. })),
            "SWIFT-R sites must attribute to redundant copies"
        );
    }
}
