//! SEU fault-injection campaigns (paper §7.1).

use crate::artifact::ArtifactStore;
use crate::pool;
use sor_core::Technique;
use sor_ir::Program;
use sor_models::{FaultModel, SampleCtx};
use sor_regalloc::LowerConfig;
use sor_rng::SmallRng;
use sor_sim::{DecodedProg, ExecEngine, FaultSpec, GenFault, MachineConfig};
use sor_stats::OutcomeCounts;
use sor_workloads::Workload;
use std::sync::Arc;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Injections per (workload, technique) pair — the paper used 250.
    pub runs: u64,
    /// RNG seed for fault-point selection.
    pub seed: u64,
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// Golden-run checkpoint interval for checkpoint-and-replay injection
    /// (see [`MachineConfig::checkpoint_interval`]): `0` runs every
    /// injection from scratch, [`MachineConfig::AUTO_CHECKPOINT`] (the
    /// default) auto-sizes from the golden run length.
    pub checkpoint_interval: u64,
    /// Interpreter core the injection machines run on (see
    /// [`ExecEngine`]): the predecoded micro-op engine by default, the
    /// legacy step path as the differential-testing oracle, or the native
    /// jit engine for paper-scale throughput (bit-identical results on
    /// all three).
    pub engine: ExecEngine,
    /// SPMD lane width for batched injection (see
    /// [`sor_sim::LaneReplayer`]): `1` (the default) runs each fault on a
    /// scalar machine; `2`/`4`/`8` execute that many injections in
    /// lockstep over one decoded program, with bit-identical results.
    /// Requires the decoded engine; silently scalar otherwise.
    pub lanes: usize,
    /// Transform configuration.
    pub transform: sor_core::TransformConfig,
    /// Fault model injections are drawn from (see [`FaultModel`]). The
    /// default, [`FaultModel::SeuReg`], runs the exact legacy SEU pipeline
    /// — fault sequences, histograms and artifacts are bit-identical to
    /// configurations that predate the field. Non-default models draw
    /// generalized faults (`draw_gen_faults`) and inject them through
    /// the scalar generalized path (lanes fall back to scalar).
    pub fault_model: FaultModel,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            runs: 250,
            seed: 0x5EED,
            threads: 0,
            checkpoint_interval: MachineConfig::AUTO_CHECKPOINT,
            engine: ExecEngine::default(),
            lanes: 1,
            transform: sor_core::TransformConfig::default(),
            fault_model: FaultModel::SeuReg,
        }
    }
}

/// The result of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Workload name.
    pub workload: String,
    /// Technique.
    pub technique: Technique,
    /// Outcome distribution.
    pub counts: OutcomeCounts,
    /// Golden dynamic instruction count of the transformed program.
    pub golden_instrs: u64,
}

/// Pre-draws the campaign's full fault list from the per-cell seed, so the
/// distribution is a pure function of (config, workload, technique) —
/// independent of thread count, and shared verbatim between plain and
/// triaged campaigns. Each fault comes from [`FaultSpec::sample`], the
/// sampling routine shared with the adaptive triage sampler.
pub(crate) fn draw_faults(
    cfg: &CampaignConfig,
    wl_name: &str,
    technique: Technique,
    golden_len: u64,
) -> Vec<FaultSpec> {
    let mut rng = SmallRng::seed_from_u64(
        cfg.seed ^ (wl_name.len() as u64) ^ ((technique.letter() as u64) << 32),
    );
    (0..cfg.runs)
        .map(|_| FaultSpec::sample(&mut rng, golden_len))
        .collect()
}

/// [`draw_faults`] over the generalized fault surface: the same per-cell
/// seed derivation, with each draw delegated to the configured
/// [`FaultModel`]'s sampler. Under the default `SeuReg` model the drawn
/// sequence is [`draw_faults`]' sequence exactly (the sampler consumes the
/// RNG draw-for-draw identically — pinned by the `sor-models` tests and
/// re-pinned end-to-end below).
pub(crate) fn draw_gen_faults(
    cfg: &CampaignConfig,
    wl_name: &str,
    technique: Technique,
    program: &Program,
    golden_len: u64,
) -> Vec<GenFault> {
    let mut rng = SmallRng::seed_from_u64(
        cfg.seed ^ (wl_name.len() as u64) ^ ((technique.letter() as u64) << 32),
    );
    let ctx = SampleCtx::for_program(program, golden_len);
    (0..cfg.runs)
        .map(|_| cfg.fault_model.sample(&mut rng, &ctx))
        .collect()
}

/// Transforms, lowers and verifies a workload under `technique`, asserting
/// output correctness against the native reference, then runs the campaign.
///
/// ```
/// use sor_core::Technique;
/// use sor_harness::{run_campaign, CampaignConfig};
/// use sor_workloads::AdpcmDec;
///
/// let workload = AdpcmDec { samples: 40, seed: 1 };
/// let cfg = CampaignConfig { runs: 10, threads: 1, ..Default::default() };
/// let result = run_campaign(&workload, Technique::SwiftR, &cfg);
/// assert_eq!(result.counts.total(), 10);
/// ```
///
/// # Panics
///
/// Panics if the transformed program's fault-free output does not match the
/// workload's native reference (that would invalidate the whole campaign).
pub fn run_campaign(
    workload: &dyn Workload,
    technique: Technique,
    cfg: &CampaignConfig,
) -> CampaignResult {
    run_campaign_in(&ArtifactStore::new(), workload, technique, cfg)
}

/// [`run_campaign`] with program preparation served from a shared
/// [`ArtifactStore`]: repeated (workload, technique, config) coordinates —
/// e.g. the same cell appearing in both a Figure 8 matrix and a headline
/// run — transform and lower exactly once.
pub fn run_campaign_in(
    store: &ArtifactStore,
    workload: &dyn Workload,
    technique: Technique,
    cfg: &CampaignConfig,
) -> CampaignResult {
    let artifact = store.get(workload, technique, &cfg.transform, &LowerConfig::default());
    let counts = inject(
        &artifact.program,
        Some(Arc::clone(&artifact.decoded)),
        artifact.jit_for(cfg.engine),
        cfg,
        workload.name(),
        technique,
    );
    CampaignResult {
        workload: workload.name().to_string(),
        technique,
        counts: counts.0,
        golden_instrs: counts.1,
    }
}

fn inject(
    program: &Program,
    decoded: Option<Arc<DecodedProg>>,
    jit: Option<Arc<sor_sim::JitProg>>,
    cfg: &CampaignConfig,
    wl_name: &str,
    technique: Technique,
) -> (OutcomeCounts, u64) {
    let runner = pool::build_runner(program, decoded, jit, cfg.checkpoint_interval, cfg.engine);
    let golden_len = runner.golden().dyn_instrs;
    if !cfg.fault_model.is_default() {
        // Generalized models: same seed derivation, model-specific draws,
        // scalar generalized injection (commutative fold, so still
        // thread-count independent).
        let faults = draw_gen_faults(cfg, wl_name, technique, program, golden_len);
        let total: OutcomeCounts = pool::inject_gen_faults(
            &runner,
            &faults,
            cfg.threads,
            |acc: &mut OutcomeCounts, _, rec, res| {
                acc.record(
                    rec.outcome,
                    res.probes.vote_repairs + res.probes.trump_recovers,
                );
            },
        );
        return (total, golden_len);
    }
    let faults = draw_faults(cfg, wl_name, technique, golden_len);
    // Work-stealing over the shared pool (see `pool::inject_faults`):
    // fault runs have wildly variable lengths, so workers steal faults (or
    // lane groups) as they finish. Summing is commutative, so `counts` is
    // exactly the same whatever the thread count, lane width or
    // interleaving — the determinism invariant the campaign tests pin.
    let total: OutcomeCounts = pool::inject_faults(
        &runner,
        &faults,
        cfg.threads,
        cfg.lanes,
        |acc: &mut OutcomeCounts, _, rec, res| {
            acc.record(
                rec.outcome,
                res.probes.vote_repairs + res.probes.trump_recovers,
            );
        },
    );
    (total, golden_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_workloads::AdpcmDec;

    fn small_cfg() -> CampaignConfig {
        CampaignConfig {
            runs: 60,
            seed: 42,
            threads: 2,
            ..Default::default()
        }
    }

    /// The sampling-dedupe pin: [`draw_faults`] built on
    /// [`FaultSpec::sample`] must draw the exact sequence the pre-dedupe
    /// hand-rolled code drew (slot, then register via `choose`, then bit),
    /// so recorded campaign results stay reproducible across the refactor.
    #[test]
    fn draw_faults_sequence_is_pinned_to_the_historical_draws() {
        let cfg = CampaignConfig {
            runs: 300,
            seed: 0x5EED,
            ..Default::default()
        };
        let golden_len = 12_345;
        let faults = draw_faults(&cfg, "adpcmdec", Technique::SwiftR, golden_len);
        // The historical inline implementation, re-derived verbatim.
        let mut rng = SmallRng::seed_from_u64(
            cfg.seed ^ ("adpcmdec".len() as u64) ^ ((Technique::SwiftR.letter() as u64) << 32),
        );
        let expected: Vec<FaultSpec> = (0..cfg.runs)
            .map(|_| {
                let at = rng.gen_range(0, golden_len.max(1));
                let reg = *rng.choose(&sor_sim::INJECTABLE_REGS);
                let bit = rng.gen_range(0, 64) as u8;
                FaultSpec::new(at, reg, bit)
            })
            .collect();
        assert_eq!(faults, expected);
    }

    /// Under the default model, the generalized draw is the legacy draw,
    /// fault for fault — the end-to-end half of the `SeuReg` pin (the
    /// sampler-level half lives in `sor-models`).
    #[test]
    fn default_model_gen_draws_equal_legacy_draws() {
        let w = AdpcmDec {
            samples: 40,
            seed: 1,
        };
        let store = ArtifactStore::new();
        let cfg = small_cfg();
        let artifact = store.get(
            &w,
            Technique::SwiftR,
            &cfg.transform,
            &LowerConfig::default(),
        );
        let runner = sor_sim::Runner::new(&artifact.program, &sor_sim::MachineConfig::default());
        let golden_len = runner.golden().dyn_instrs;
        let legacy = draw_faults(&cfg, w.name(), Technique::SwiftR, golden_len);
        let gen = draw_gen_faults(
            &cfg,
            w.name(),
            Technique::SwiftR,
            &artifact.program,
            golden_len,
        );
        assert_eq!(gen.len(), legacy.len());
        for (g, &l) in gen.iter().zip(&legacy) {
            assert_eq!(*g, GenFault::from_spec(l));
        }
    }

    /// Every non-default model runs a full campaign: all injections
    /// classified, deterministic across thread counts.
    #[test]
    fn generalized_model_campaigns_classify_everything_deterministically() {
        let w = AdpcmDec {
            samples: 60,
            seed: 7,
        };
        for model in FaultModel::ALL {
            if model.is_default() {
                continue;
            }
            let mut c1 = small_cfg();
            c1.runs = 30;
            c1.fault_model = model;
            c1.threads = 1;
            let mut c4 = c1.clone();
            c4.threads = 4;
            let a = run_campaign(&w, Technique::SwiftR, &c1);
            let b = run_campaign(&w, Technique::SwiftR, &c4);
            assert_eq!(a.counts.total(), 30, "{model}");
            assert_eq!(a.counts, b.counts, "{model}: thread count changed results");
        }
    }

    #[test]
    fn noft_campaign_classifies_everything() {
        let w = AdpcmDec {
            samples: 150,
            seed: 7,
        };
        let r = run_campaign(&w, Technique::Noft, &small_cfg());
        assert_eq!(r.counts.total(), 60);
        assert!(r.counts.unace > 0, "some faults must be benign");
        assert!(r.golden_instrs > 1000);
    }

    #[test]
    fn swiftr_campaign_beats_noft() {
        let w = AdpcmDec {
            samples: 150,
            seed: 7,
        };
        let noft = run_campaign(&w, Technique::Noft, &small_cfg());
        let swiftr = run_campaign(&w, Technique::SwiftR, &small_cfg());
        assert!(
            swiftr.counts.pct_unace() >= noft.counts.pct_unace(),
            "SWIFT-R {} !>= NOFT {}",
            swiftr.counts.pct_unace(),
            noft.counts.pct_unace()
        );
        assert!(swiftr.counts.recoveries > 0, "votes must have repaired");
    }

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let w = AdpcmDec {
            samples: 100,
            seed: 3,
        };
        let mut c1 = small_cfg();
        c1.threads = 1;
        let mut c4 = small_cfg();
        c4.threads = 4;
        let a = run_campaign(&w, Technique::Trump, &c1);
        let b = run_campaign(&w, Technique::Trump, &c4);
        assert_eq!(a.counts, b.counts);
    }

    /// Serving the program from a shared artifact store must not change
    /// campaign results: the store memoizes preparation, not injection.
    #[test]
    fn shared_store_preserves_campaign_results() {
        let w = AdpcmDec {
            samples: 100,
            seed: 3,
        };
        let fresh = run_campaign(&w, Technique::SwiftR, &small_cfg());
        let store = ArtifactStore::new();
        let first = run_campaign_in(&store, &w, Technique::SwiftR, &small_cfg());
        let second = run_campaign_in(&store, &w, Technique::SwiftR, &small_cfg());
        assert_eq!(store.hits(), 1, "second campaign must reuse the artifact");
        assert_eq!(first.counts, fresh.counts);
        assert_eq!(second.counts, fresh.counts);
        assert_eq!(first.golden_instrs, fresh.golden_instrs);
    }

    /// Checkpoint-and-replay must not change campaign results at all: the
    /// outcome distribution is identical with checkpointing disabled,
    /// auto-sized, or forced to an awkward interval, at any thread count.
    #[test]
    fn checkpointing_never_changes_campaign_results() {
        let w = AdpcmDec {
            samples: 100,
            seed: 3,
        };
        let reference = {
            let mut c = small_cfg();
            c.threads = 1;
            c.checkpoint_interval = 0;
            run_campaign(&w, Technique::SwiftR, &c)
        };
        for (interval, threads) in [
            (sor_sim::MachineConfig::AUTO_CHECKPOINT, 1),
            (sor_sim::MachineConfig::AUTO_CHECKPOINT, 4),
            (777, 2),
            (0, 4),
        ] {
            let mut c = small_cfg();
            c.threads = threads;
            c.checkpoint_interval = interval;
            let r = run_campaign(&w, Technique::SwiftR, &c);
            assert_eq!(
                r.counts, reference.counts,
                "interval {interval} x {threads} threads diverged"
            );
            assert_eq!(r.golden_instrs, reference.golden_instrs);
        }
    }
}
