//! SEU fault-injection campaigns (paper §7.1).

use crate::stats::OutcomeCounts;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sor_core::Technique;
use sor_ir::Program;
use sor_regalloc::{lower, LowerConfig};
use sor_sim::{FaultSpec, MachineConfig, Runner};
use sor_workloads::Workload;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Injections per (workload, technique) pair — the paper used 250.
    pub runs: u64,
    /// RNG seed for fault-point selection.
    pub seed: u64,
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// Transform configuration.
    pub transform: sor_core::TransformConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            runs: 250,
            seed: 0x5EED,
            threads: 0,
            transform: sor_core::TransformConfig::default(),
        }
    }
}

/// The result of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Workload name.
    pub workload: String,
    /// Technique.
    pub technique: Technique,
    /// Outcome distribution.
    pub counts: OutcomeCounts,
    /// Golden dynamic instruction count of the transformed program.
    pub golden_instrs: u64,
}

/// Draws the paper's fault distribution: uniform over dynamic instructions,
/// injectable integer registers and bit positions.
fn draw_fault(rng: &mut StdRng, golden_len: u64) -> FaultSpec {
    let at = rng.gen_range(0..golden_len.max(1));
    let regs: Vec<u8> = FaultSpec::injectable_regs().collect();
    let reg = regs[rng.gen_range(0..regs.len())];
    let bit = rng.gen_range(0..64u8);
    FaultSpec::new(at, reg, bit)
}

/// Transforms, lowers and verifies a workload under `technique`, asserting
/// output correctness against the native reference, then runs the campaign.
///
/// ```
/// use sor_core::Technique;
/// use sor_harness::{run_campaign, CampaignConfig};
/// use sor_workloads::AdpcmDec;
///
/// let workload = AdpcmDec { samples: 40, seed: 1 };
/// let cfg = CampaignConfig { runs: 10, threads: 1, ..Default::default() };
/// let result = run_campaign(&workload, Technique::SwiftR, &cfg);
/// assert_eq!(result.counts.total(), 10);
/// ```
///
/// # Panics
///
/// Panics if the transformed program's fault-free output does not match the
/// workload's native reference (that would invalidate the whole campaign).
pub fn run_campaign(
    workload: &dyn Workload,
    technique: Technique,
    cfg: &CampaignConfig,
) -> CampaignResult {
    let module = workload.build();
    let transformed = technique.apply_with(&module, &cfg.transform);
    let program = lower(&transformed, &LowerConfig::default())
        .unwrap_or_else(|e| panic!("{}/{technique}: {e}", workload.name()));
    let counts = inject(&program, cfg, workload.name(), technique);
    CampaignResult {
        workload: workload.name().to_string(),
        technique,
        counts: counts.0,
        golden_instrs: counts.1,
    }
}

fn inject(
    program: &Program,
    cfg: &CampaignConfig,
    wl_name: &str,
    technique: Technique,
) -> (OutcomeCounts, u64) {
    let runner = Runner::new(program, &MachineConfig::default());
    let golden_len = runner.golden().dyn_instrs;

    // Pre-draw all fault points so the distribution is independent of the
    // thread count.
    let mut rng = StdRng::seed_from_u64(
        cfg.seed ^ (wl_name.len() as u64) ^ ((technique.letter() as u64) << 32),
    );
    let faults: Vec<FaultSpec> = (0..cfg.runs)
        .map(|_| draw_fault(&mut rng, golden_len))
        .collect();

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        cfg.threads
    };
    let chunk = faults.len().div_ceil(threads.max(1));
    let mut total = OutcomeCounts::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for ch in faults.chunks(chunk.max(1)) {
            let runner_ref = &runner;
            handles.push(scope.spawn(move || {
                let mut counts = OutcomeCounts::default();
                for &f in ch {
                    let (outcome, res) = runner_ref.run_fault(f);
                    counts.record(outcome, res.probes.vote_repairs + res.probes.trump_recovers);
                }
                counts
            }));
        }
        for h in handles {
            total += h.join().expect("campaign worker panicked");
        }
    });
    (total, golden_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_workloads::AdpcmDec;

    fn small_cfg() -> CampaignConfig {
        CampaignConfig {
            runs: 60,
            seed: 42,
            threads: 2,
            transform: Default::default(),
        }
    }

    #[test]
    fn noft_campaign_classifies_everything() {
        let w = AdpcmDec {
            samples: 150,
            seed: 7,
        };
        let r = run_campaign(&w, Technique::Noft, &small_cfg());
        assert_eq!(r.counts.total(), 60);
        assert!(r.counts.unace > 0, "some faults must be benign");
        assert!(r.golden_instrs > 1000);
    }

    #[test]
    fn swiftr_campaign_beats_noft() {
        let w = AdpcmDec {
            samples: 150,
            seed: 7,
        };
        let noft = run_campaign(&w, Technique::Noft, &small_cfg());
        let swiftr = run_campaign(&w, Technique::SwiftR, &small_cfg());
        assert!(
            swiftr.counts.pct_unace() >= noft.counts.pct_unace(),
            "SWIFT-R {} !>= NOFT {}",
            swiftr.counts.pct_unace(),
            noft.counts.pct_unace()
        );
        assert!(swiftr.counts.recoveries > 0, "votes must have repaired");
    }

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let w = AdpcmDec {
            samples: 100,
            seed: 3,
        };
        let mut c1 = small_cfg();
        c1.threads = 1;
        let mut c4 = small_cfg();
        c4.threads = 4;
        let a = run_campaign(&w, Technique::Trump, &c1);
        let b = run_campaign(&w, Technique::Trump, &c4);
        assert_eq!(a.counts, b.counts);
    }
}
