//! Performance measurement via the timing model (paper §7.2).

use crate::artifact::ArtifactStore;
use sor_core::Technique;
use sor_regalloc::LowerConfig;
use sor_sim::{Machine, MachineConfig, TimingConfig};
use sor_workloads::Workload;

/// Performance-run parameters.
#[derive(Debug, Clone, Default)]
pub struct PerfConfig {
    /// Timing model configuration (issue width, cache, penalties).
    pub timing: TimingConfig,
    /// Transform configuration.
    pub transform: sor_core::TransformConfig,
}

/// One fault-free timed execution.
#[derive(Debug, Clone)]
pub struct PerfResult {
    /// Workload name.
    pub workload: String,
    /// Technique.
    pub technique: Technique,
    /// Model cycles.
    pub cycles: u64,
    /// Dynamic instructions.
    pub dyn_instrs: u64,
    /// L1-D miss ratio.
    pub miss_ratio: f64,
}

impl PerfResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.dyn_instrs as f64 / self.cycles.max(1) as f64
    }
}

/// Runs `workload` under `technique` with the timing model, fault-free.
pub fn measure_perf(workload: &dyn Workload, technique: Technique, cfg: &PerfConfig) -> PerfResult {
    measure_perf_in(&ArtifactStore::new(), workload, technique, cfg)
}

/// [`measure_perf`] with program preparation served from a shared
/// [`ArtifactStore`] — a timing run after a reliability campaign on the
/// same coordinates reuses the campaign's transformed program.
pub fn measure_perf_in(
    store: &ArtifactStore,
    workload: &dyn Workload,
    technique: Technique,
    cfg: &PerfConfig,
) -> PerfResult {
    let artifact = store.get(workload, technique, &cfg.transform, &LowerConfig::default());
    let program = &artifact.program;
    let mcfg = MachineConfig {
        timing: Some(cfg.timing.clone()),
        ..MachineConfig::default()
    };
    let r = Machine::new(program, &mcfg).run(None);
    assert_eq!(
        r.status,
        sor_sim::RunStatus::Completed,
        "{}/{technique} did not complete",
        workload.name()
    );
    let hits = r.cache_hits.unwrap_or(0);
    let misses = r.cache_misses.unwrap_or(0);
    PerfResult {
        workload: workload.name().to_string(),
        technique,
        cycles: r.cycles.expect("timing enabled"),
        dyn_instrs: r.dyn_instrs,
        miss_ratio: misses as f64 / (hits + misses).max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_workloads::{AdpcmDec, Art, Mcf};

    #[test]
    fn swiftr_costs_more_cycles_than_noft() {
        let w = AdpcmDec {
            samples: 200,
            seed: 1,
        };
        let cfg = PerfConfig::default();
        let noft = measure_perf(&w, Technique::Noft, &cfg);
        let swiftr = measure_perf(&w, Technique::SwiftR, &cfg);
        let ratio = swiftr.cycles as f64 / noft.cycles as f64;
        assert!(ratio > 1.2, "SWIFT-R ratio {ratio}");
        // But far below the naive 3x, thanks to spare ILP.
        assert!(ratio < 3.2, "SWIFT-R ratio {ratio}");
        assert!(swiftr.dyn_instrs > noft.dyn_instrs * 2);
    }

    #[test]
    fn fp_workload_is_barely_slowed() {
        let w = Art {
            neurons: 6,
            inputs: 24,
            epochs: 2,
            seed: 2,
        };
        let cfg = PerfConfig::default();
        let noft = measure_perf(&w, Technique::Noft, &cfg);
        let swiftr = measure_perf(&w, Technique::SwiftR, &cfg);
        let ratio = swiftr.cycles as f64 / noft.cycles as f64;
        // The campaign-sized `art` measures ~1.66x (see EXPERIMENTS.md);
        // this reduced instance has proportionally more integer loop
        // machinery around its FP work, so allow a little headroom.
        assert!(ratio < 2.3, "art SWIFT-R ratio {ratio} should be modest");
    }

    #[test]
    fn memory_bound_workload_hides_overhead() {
        let w = Mcf {
            nodes: 8192,
            steps: 1500,
            seed: 2,
        };
        let cfg = PerfConfig::default();
        let noft = measure_perf(&w, Technique::Noft, &cfg);
        assert!(noft.miss_ratio > 0.2, "miss ratio {}", noft.miss_ratio);
        let trump = measure_perf(&w, Technique::Trump, &cfg);
        let ratio = trump.cycles as f64 / noft.cycles as f64;
        assert!(ratio < 1.9, "mcf TRUMP ratio {ratio}");
    }
}
