//! The paper's headline numbers (§1, §7, §9).

use crate::figures::{FigureEight, FigureNine};
use sor_core::Technique;
use std::fmt;

/// Summary metrics comparable to the paper's quoted numbers.
#[derive(Debug, Clone)]
pub struct Headline {
    rows: Vec<HeadlineRow>,
}

/// One technique's summary.
#[derive(Debug, Clone)]
pub struct HeadlineRow {
    /// Technique.
    pub technique: Technique,
    /// Average unACE percentage across benchmarks.
    pub unace_pct: f64,
    /// 95% Wilson interval for the unACE percentage.
    pub unace_ci95: (f64, f64),
    /// Average SEGV percentage.
    pub segv_pct: f64,
    /// Average SDC percentage.
    pub sdc_pct: f64,
    /// Reduction of (SDC+SEGV) relative to NOFT, in percent.
    pub bad_reduction_pct: f64,
    /// Geometric-mean normalized execution time.
    pub norm_time: f64,
}

/// Derives the headline table from the two figures.
pub fn headline(fig8: &FigureEight, fig9: &FigureNine) -> Headline {
    let noft_bad = fig8.average(Technique::Noft).pct_bad();
    let rows = fig8
        .techniques
        .iter()
        .map(|&t| {
            let avg = fig8.average(t);
            let reduction = if noft_bad > 0.0 {
                100.0 * (noft_bad - avg.pct_bad()) / noft_bad
            } else {
                0.0
            };
            HeadlineRow {
                technique: t,
                unace_pct: avg.pct_unace(),
                unace_ci95: avg.unace_ci95(),
                segv_pct: avg.pct_segv(),
                sdc_pct: avg.pct_sdc(),
                bad_reduction_pct: reduction,
                norm_time: fig9.geomean(t),
            }
        })
        .collect();
    Headline { rows }
}

impl Headline {
    /// Per-technique rows in Figure 8 order.
    pub fn rows(&self) -> &[HeadlineRow] {
        &self.rows
    }

    /// The row for one technique.
    pub fn row(&self, t: Technique) -> Option<&HeadlineRow> {
        self.rows.iter().find(|r| r.technique == t)
    }

    /// JSON form (one object per technique row).
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "  {{\"technique\": \"{}\", \"unace_pct\": {:.2}, \
                     \"unace_ci95\": [{:.2}, {:.2}], \"segv_pct\": {:.2}, \
                     \"sdc_pct\": {:.2}, \"bad_reduction_pct\": {:.2}, \
                     \"norm_time\": {:.3}}}",
                    r.technique,
                    r.unace_pct,
                    r.unace_ci95.0,
                    r.unace_ci95.1,
                    r.segv_pct,
                    r.sdc_pct,
                    r.bad_reduction_pct,
                    r.norm_time,
                )
            })
            .collect();
        format!("[\n{}\n]\n", rows.join(",\n"))
    }
}

impl fmt::Display for Headline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14} {:>8} {:>17} {:>8} {:>8} {:>14} {:>10}",
            "technique", "unACE%", "(95% CI)", "SEGV%", "SDC%", "bad-reduction%", "norm-time"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>8.2} {:>17} {:>8.2} {:>8.2} {:>14.2} {:>10.2}",
                r.technique.to_string(),
                r.unace_pct,
                format!("[{:.1}, {:.1}]", r.unace_ci95.0, r.unace_ci95.1),
                r.segv_pct,
                r.sdc_pct,
                r.bad_reduction_pct,
                r.norm_time
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignConfig;
    use crate::perf::PerfConfig;
    use sor_workloads::{AdpcmDec, Workload};

    #[test]
    fn headline_summarizes_both_figures() {
        let suite: Vec<Box<dyn Workload>> = vec![Box::new(AdpcmDec {
            samples: 80,
            seed: 1,
        })];
        let cfg = CampaignConfig {
            runs: 30,
            threads: 2,
            ..Default::default()
        };
        let fig8 = FigureEight::run(&suite, &cfg);
        let fig9 = FigureNine::run(&suite, &PerfConfig::default());
        let h = headline(&fig8, &fig9);
        assert_eq!(h.rows().len(), Technique::FIGURE8.len());
        let noft = h.row(Technique::Noft).unwrap();
        assert!((noft.norm_time - 1.0).abs() < 1e-9);
        assert!(noft.bad_reduction_pct.abs() < 1e-9);
        let text = h.to_string();
        assert!(text.contains("SWIFT-R"));
        let json = h.to_json();
        assert_eq!(
            json.matches("\"technique\"").count(),
            Technique::FIGURE8.len(),
            "{json}"
        );
        assert!(json.contains("\"bad_reduction_pct\""), "{json}");
    }
}
