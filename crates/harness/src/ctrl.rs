//! Cooperative run control for long-running campaign drivers.
//!
//! The resumable entry points ([`crate::certify_resumable`],
//! [`crate::run_triaged_campaign_resumable`]) check a shared [`RunCtrl`]
//! at every section boundary: once a stop is requested they finish the
//! section in flight, persist what completed to the [`crate::ResultStore`]
//! and return a `Paused` status instead of a result. Nothing is lost —
//! re-invoking the same entry point against the same store serves the
//! finished sections as hits and executes only the remainder. This is the
//! primitive `sor-server` builds pause/resume and graceful shutdown on.

use std::sync::atomic::{AtomicBool, Ordering};

/// A shared stop flag a driver polls between sections.
///
/// One `RunCtrl` is meant to be shared (via `Arc`) between the thread
/// executing a job and whoever may want to interrupt it — a pause
/// endpoint, a shutdown drain, a test. Requesting a stop is idempotent
/// and takes effect at the next section boundary; it never aborts an
/// injection mid-flight, so stores only ever see whole sections.
#[derive(Debug, Default)]
pub struct RunCtrl {
    stop: AtomicBool,
}

impl RunCtrl {
    /// A fresh control with no stop requested.
    pub fn new() -> Self {
        RunCtrl::default()
    }

    /// Asks the driver to pause at the next section boundary.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Whether a stop has been requested.
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Re-arms the control so a paused job can be resumed under it.
    pub fn clear(&self) {
        self.stop.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_round_trips() {
        let c = RunCtrl::new();
        assert!(!c.stop_requested());
        c.request_stop();
        c.request_stop();
        assert!(c.stop_requested());
        c.clear();
        assert!(!c.stop_requested());
    }
}
