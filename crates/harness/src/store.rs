//! The two-tier content-addressed result store.
//!
//! Where [`crate::ArtifactStore`] memoizes program *preparation*, this
//! store memoizes the expensive half of a sweep: executed injection
//! results. Entries are keyed by [`SectionKey`] — pure content digests
//! (program, def-use slice, fault model; see `sor_ace::incremental` and
//! DESIGN.md §14) — so a key never goes stale by renaming and never
//! collides across workload parameters.
//!
//! Two tiers:
//!
//! * **Memory** — `Arc`-shared maps behind mutexes, exactly like the
//!   artifact store; all gets are served here.
//! * **Disk** — an append-only file under the store directory
//!   (`results/store/sections.bin` for the default bins), loaded once at
//!   [`ResultStore::open`] and appended on every fresh insert. Std-only,
//!   length-prefixed binary records with a magic + format-version header
//!   and a per-record FNV-1a checksum.
//!
//! ## Robustness contract
//!
//! A store must never be able to make a result *wrong*, only to make it
//! *recomputed*. Every degraded state falls back to a clean miss and
//! counts a [`warning`](ResultStore::warnings):
//!
//! * header magic or version mismatch → the whole file is ignored and
//!   rewritten fresh;
//! * a truncated or checksum-corrupt record → the file is truncated back
//!   to its last intact prefix (re-inserts heal the lost tail);
//! * a record that parses but disagrees with the caller's freshly built
//!   plan (the digest-collision guard) → dropped and recomputed;
//! * any I/O error → the store silently degrades to memory-only.
//!
//! ## Concurrency
//!
//! One `ResultStore` is safe to share across threads: gets read the
//! memory tier (read-your-writes — a section another thread just `put`
//! is immediately visible), and the disk tier is a single append lock
//! around one persistently held file handle, so frames from racing
//! writers never interleave. The on-disk file still assumes a single
//! *process* per store directory; concurrent readers of the file are
//! safe because records are validated independently.

use sor_ace::{ClassOutcome, SectionKey, SectionOutcomes};
use sor_ir::{ContentHash, Fnv1a, ProtectionRole};
use sor_sim::FaultSpec;
use sor_stats::OutcomeCounts;
use sor_triage::{SiteStats, VulnerabilityProfile};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Bump whenever the record layout below changes incompatibly; stores
/// written under any other version are discarded wholesale (a warning,
/// then clean recompute). Version 2: the fault-model subsystem revised
/// the section-key config digest (`CERT_SEMANTICS_VERSION` 2 now feeds
/// the per-model digest), so version-1 records can never match a fresh
/// key and are dead weight — discarding the file up front keeps the
/// stale entries from accumulating silently.
pub const STORE_FORMAT_VERSION: u32 = 2;

const MAGIC: &[u8; 8] = b"SORSTORE";
const HEADER_LEN: u64 = 12;
const KIND_CERT: u8 = 1;
const KIND_TRIAGE: u8 = 2;
/// Backstop against absurd length prefixes from corrupt frames.
const MAX_PAYLOAD: u32 = 1 << 28;

/// Derives the [`SectionKey`] of one stored triage section: the program
/// digest, a digest of the section's bounds and exact fault list, and the
/// shared fault-model digest. Exact for the same reason certification
/// keys are (each sampled fault's outcome is a pure function of
/// `(program, fault)`); the fault list stands in for the def-use slice
/// because sampled sections re-execute listed faults rather than class
/// representatives derived from a trace.
pub fn triage_section_key(
    program: ContentHash,
    start: u64,
    end: u64,
    faults: &[FaultSpec],
) -> SectionKey {
    let mut h = Fnv1a::new();
    h.u64(start);
    h.u64(end);
    h.usize(faults.len());
    for f in faults {
        h.u64(f.at_instr);
        h.bytes(&[f.reg, f.bit]);
    }
    SectionKey {
        program,
        slice: ContentHash(h.finish64()),
        config: sor_ace::fault_config_digest(),
    }
}

/// The disk tier: the store file's path plus a persistently held append
/// handle. Holding the handle for the store's lifetime (rather than
/// re-opening per append) makes the surrounding mutex the *single*
/// append lock — racing in-process writers serialize through it and
/// frames never interleave.
struct DiskTier {
    path: PathBuf,
    file: std::fs::File,
}

impl DiskTier {
    fn attach(path: &Path) -> std::io::Result<DiskTier> {
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        Ok(DiskTier {
            path: path.to_path_buf(),
            file,
        })
    }
}

/// The two-tier persistent result store shared by certify, triage, the
/// figure bins and `sor-server`. See the module docs for the format, the
/// robustness contract and the concurrency contract.
pub struct ResultStore {
    cert: Mutex<HashMap<SectionKey, Arc<SectionOutcomes>>>,
    triage: Mutex<HashMap<SectionKey, Arc<VulnerabilityProfile>>>,
    /// Disk tier; `None` = memory-only (either by construction or after
    /// an unrecoverable I/O error).
    file: Mutex<Option<DiskTier>>,
    hits: AtomicU64,
    misses: AtomicU64,
    warnings: AtomicU64,
}

impl Default for ResultStore {
    fn default() -> Self {
        ResultStore::in_memory()
    }
}

impl ResultStore {
    /// A memory-only store: full incremental reuse within one process,
    /// nothing persisted (the `--no-store` path).
    pub fn in_memory() -> Self {
        ResultStore {
            cert: Mutex::new(HashMap::new()),
            triage: Mutex::new(HashMap::new()),
            file: Mutex::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            warnings: AtomicU64::new(0),
        }
    }

    /// Opens (creating if needed) the persistent store under `dir`,
    /// loading every intact record into the memory tier. Never fails:
    /// unreadable headers, corrupt tails and I/O errors all degrade per
    /// the module-level robustness contract.
    pub fn open(dir: impl AsRef<Path>) -> Self {
        let store = ResultStore::in_memory();
        let path = dir.as_ref().join("sections.bin");
        if std::fs::create_dir_all(dir.as_ref()).is_err() {
            store.warn();
            return store;
        }
        match std::fs::read(&path) {
            Ok(bytes) => store.load(&path, &bytes),
            // A fresh store directory: write the header now so later
            // appends land in a well-formed file.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                match write_header(&path).and_then(|()| DiskTier::attach(&path)) {
                    Ok(tier) => *store.file.lock().unwrap() = Some(tier),
                    Err(_) => store.warn(),
                }
            }
            Err(_) => store.warn(),
        }
        store
    }

    /// Parses a store file image, populating the memory tier and healing
    /// the file in place when its tail is damaged.
    fn load(&self, path: &Path, bytes: &[u8]) {
        if bytes.len() < HEADER_LEN as usize
            || &bytes[..8] != MAGIC
            || bytes[8..12] != STORE_FORMAT_VERSION.to_le_bytes()
        {
            // Foreign or stale-format file: discard wholesale.
            self.warn();
            if let Ok(tier) = write_header(path).and_then(|()| DiskTier::attach(path)) {
                *self.file.lock().unwrap() = Some(tier);
            }
            return;
        }
        let mut off = HEADER_LEN as usize;
        let mut good = off;
        loop {
            match read_record(&bytes[off..]) {
                Ok(Some((consumed, entry))) => {
                    match entry {
                        Entry::Cert(key, v) => {
                            self.cert.lock().unwrap().insert(key, Arc::new(v));
                        }
                        Entry::Triage(key, v) => {
                            self.triage.lock().unwrap().insert(key, Arc::new(v));
                        }
                    }
                    off += consumed;
                    good = off;
                }
                Ok(None) => break, // clean end of file
                Err(()) => {
                    // Truncated or corrupt record: heal by cutting the
                    // file back to its last intact prefix and stop.
                    self.warn();
                    let f = std::fs::OpenOptions::new().write(true).open(path);
                    if f.and_then(|f| f.set_len(good as u64)).is_err() {
                        self.warn();
                    }
                    break;
                }
            }
        }
        // Attach the append handle only after any healing truncation, so
        // appends land at the intact prefix's end.
        match DiskTier::attach(path) {
            Ok(tier) => *self.file.lock().unwrap() = Some(tier),
            Err(_) => self.warn(),
        }
    }

    /// Looks up a certified section, `validate` guarding against digest
    /// collisions and plan drift: a cached entry that fails validation is
    /// dropped, counted as a warning, and reported as a miss (forcing
    /// recompute) — never served.
    pub fn get_cert(
        &self,
        key: &SectionKey,
        validate: impl FnOnce(&SectionOutcomes) -> bool,
    ) -> Option<Arc<SectionOutcomes>> {
        let found = self.cert.lock().unwrap().get(key).cloned();
        self.resolve(found, key, validate, &self.cert)
    }

    /// Looks up a triage section profile; same contract as
    /// [`get_cert`](Self::get_cert).
    pub fn get_triage(
        &self,
        key: &SectionKey,
        validate: impl FnOnce(&VulnerabilityProfile) -> bool,
    ) -> Option<Arc<VulnerabilityProfile>> {
        let found = self.triage.lock().unwrap().get(key).cloned();
        self.resolve(found, key, validate, &self.triage)
    }

    fn resolve<T>(
        &self,
        found: Option<Arc<T>>,
        key: &SectionKey,
        validate: impl FnOnce(&T) -> bool,
        map: &Mutex<HashMap<SectionKey, Arc<T>>>,
    ) -> Option<Arc<T>> {
        match found {
            Some(v) if validate(&v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            Some(_) => {
                self.warn();
                self.misses.fetch_add(1, Ordering::Relaxed);
                map.lock().unwrap().remove(key);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a freshly executed certified section and appends it to the
    /// disk tier. Re-inserting an already-cached key is a no-op (results
    /// are deterministic per key, so the stored value is already right).
    pub fn put_cert(&self, key: SectionKey, value: SectionOutcomes) -> Arc<SectionOutcomes> {
        let value = Arc::new(value);
        let fresh = self
            .cert
            .lock()
            .unwrap()
            .insert(key, Arc::clone(&value))
            .is_none();
        if fresh {
            self.append(encode_cert(&key, &value));
        }
        value
    }

    /// Inserts a freshly executed triage section profile; same contract
    /// as [`put_cert`](Self::put_cert).
    pub fn put_triage(
        &self,
        key: SectionKey,
        value: VulnerabilityProfile,
    ) -> Arc<VulnerabilityProfile> {
        let value = Arc::new(value);
        let fresh = self
            .triage
            .lock()
            .unwrap()
            .insert(key, Arc::clone(&value))
            .is_none();
        if fresh {
            self.append(encode_triage(&key, &value));
        }
        value
    }

    /// Appends one framed record through the held handle. The tier lock
    /// is held for the whole write, so concurrent in-process `put`s
    /// serialize and the file only ever contains whole frames (short of
    /// an external crash mid-write, which `load` heals).
    fn append(&self, payload: Vec<u8>) {
        let mut guard = self.file.lock().unwrap();
        let Some(tier) = guard.as_mut() else { return };
        let mut frame = Vec::with_capacity(payload.len() + 12);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&checksum(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        if tier.file.write_all(&frame).is_err() {
            // A failed append may have left a partial frame; drop the
            // tier (memory-only from here) rather than risk appending
            // after a torn record.
            *guard = None;
            self.warn();
        }
    }

    /// Flushes the disk tier to the OS. Appends already go straight to
    /// the file; this exists so a graceful shutdown has an explicit
    /// barrier before the process exits.
    pub fn flush(&self) {
        if let Some(tier) = self.file.lock().unwrap().as_mut() {
            if tier.file.flush().is_err() {
                self.warn();
            }
        }
    }

    fn warn(&self) {
        self.warnings.fetch_add(1, Ordering::Relaxed);
    }

    /// Section lookups served from the store.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Section lookups that had to recompute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Degraded-state events survived (corrupt records, version
    /// mismatches, I/O errors, validation rejections).
    pub fn warnings(&self) -> u64 {
        self.warnings.load(Ordering::Relaxed)
    }

    /// Entries held in the memory tier (certified + triage sections).
    pub fn len(&self) -> usize {
        self.cert.lock().unwrap().len() + self.triage.lock().unwrap().len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The disk tier's file path, when persistence is active.
    pub fn path(&self) -> Option<PathBuf> {
        self.file.lock().unwrap().as_ref().map(|t| t.path.clone())
    }

    /// The one-line `hits=… misses=… warnings=…` summary the bins print.
    pub fn summary(&self) -> String {
        format!(
            "hits={} misses={} warnings={}",
            self.hits(),
            self.misses(),
            self.warnings()
        )
    }
}

fn write_header(path: &Path) -> std::io::Result<()> {
    let mut header = Vec::with_capacity(HEADER_LEN as usize);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
    std::fs::write(path, header)
}

fn checksum(payload: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.bytes(payload);
    h.finish64()
}

enum Entry {
    Cert(SectionKey, SectionOutcomes),
    Triage(SectionKey, VulnerabilityProfile),
}

/// Reads one framed record from `bytes`. `Ok(None)` = clean end,
/// `Err(())` = truncated or corrupt (caller truncates the file here).
fn read_record(bytes: &[u8]) -> Result<Option<(usize, Entry)>, ()> {
    if bytes.is_empty() {
        return Ok(None);
    }
    if bytes.len() < 12 {
        return Err(());
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(());
    }
    let sum = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
    let end = 12usize.checked_add(len as usize).ok_or(())?;
    let payload = bytes.get(12..end).ok_or(())?;
    if checksum(payload) != sum {
        return Err(());
    }
    let entry = decode_payload(payload).ok_or(())?;
    Ok(Some((end, entry)))
}

fn decode_payload(payload: &[u8]) -> Option<Entry> {
    let mut r = Reader(payload);
    let kind = r.u8()?;
    let key = SectionKey {
        program: ContentHash(r.u64()?),
        slice: ContentHash(r.u64()?),
        config: ContentHash(r.u64()?),
    };
    let entry = match kind {
        KIND_CERT => {
            let n = r.u32()? as usize;
            let mut classes = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                classes.push(ClassOutcome {
                    reg: r.u8()?,
                    rep: r.u64()?,
                    counts: r.counts()?,
                });
            }
            Entry::Cert(key, SectionOutcomes { classes })
        }
        KIND_TRIAGE => {
            let nsites = r.u32()? as usize;
            let mut sites = Vec::with_capacity(nsites.min(1 << 20));
            for _ in 0..nsites {
                let pc = r.u64()? as usize;
                let role = r.role()?;
                let counts = r.counts()?;
                sites.push((pc, SiteStats { role, counts }));
            }
            let nroles = r.u32()? as usize;
            let mut roles = Vec::with_capacity(nroles.min(1 << 10));
            for _ in 0..nroles {
                roles.push((r.role()?, r.counts()?));
            }
            let nregs = r.u32()? as usize;
            let mut regs = Vec::with_capacity(nregs.min(1 << 10));
            for _ in 0..nregs {
                regs.push((r.u8()?, r.counts()?));
            }
            let unfired = r.counts()?;
            Entry::Triage(
                key,
                VulnerabilityProfile::from_parts(sites, roles, regs, unfired),
            )
        }
        _ => return None,
    };
    // Trailing garbage inside a checksummed frame means the writer and
    // reader disagree about the layout: reject.
    if !r.0.is_empty() {
        return None;
    }
    Some(entry)
}

struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let (head, tail) = (self.0.get(..n)?, self.0.get(n..)?);
        self.0 = tail;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn counts(&mut self) -> Option<OutcomeCounts> {
        Some(OutcomeCounts {
            unace: self.u64()?,
            sdc: self.u64()?,
            segv: self.u64()?,
            detected: self.u64()?,
            hang: self.u64()?,
            recoveries: self.u64()?,
        })
    }

    fn role(&mut self) -> Option<ProtectionRole> {
        ProtectionRole::ALL.get(self.u8()? as usize).copied()
    }
}

fn put_counts(buf: &mut Vec<u8>, c: &OutcomeCounts) {
    // Destructured so a field added to OutcomeCounts fails to compile
    // here instead of silently vanishing from the store.
    let OutcomeCounts {
        unace,
        sdc,
        segv,
        detected,
        hang,
        recoveries,
    } = *c;
    for v in [unace, sdc, segv, detected, hang, recoveries] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn role_code(role: ProtectionRole) -> u8 {
    ProtectionRole::ALL
        .iter()
        .position(|&r| r == role)
        .expect("ALL enumerates every role") as u8
}

fn put_key(buf: &mut Vec<u8>, kind: u8, key: &SectionKey) {
    buf.push(kind);
    buf.extend_from_slice(&key.program.0.to_le_bytes());
    buf.extend_from_slice(&key.slice.0.to_le_bytes());
    buf.extend_from_slice(&key.config.0.to_le_bytes());
}

fn encode_cert(key: &SectionKey, value: &SectionOutcomes) -> Vec<u8> {
    let mut buf = Vec::new();
    put_key(&mut buf, KIND_CERT, key);
    buf.extend_from_slice(&(value.classes.len() as u32).to_le_bytes());
    for c in &value.classes {
        buf.push(c.reg);
        buf.extend_from_slice(&c.rep.to_le_bytes());
        put_counts(&mut buf, &c.counts);
    }
    buf
}

fn encode_triage(key: &SectionKey, value: &VulnerabilityProfile) -> Vec<u8> {
    let mut buf = Vec::new();
    put_key(&mut buf, KIND_TRIAGE, key);
    let sites: Vec<_> = value.sites().collect();
    buf.extend_from_slice(&(sites.len() as u32).to_le_bytes());
    for (pc, s) in sites {
        buf.extend_from_slice(&(pc as u64).to_le_bytes());
        buf.push(role_code(s.role));
        put_counts(&mut buf, &s.counts);
    }
    let roles: Vec<_> = value.roles().collect();
    buf.extend_from_slice(&(roles.len() as u32).to_le_bytes());
    for (role, c) in roles {
        buf.push(role_code(role));
        put_counts(&mut buf, &c);
    }
    let regs: Vec<_> = value.regs().collect();
    buf.extend_from_slice(&(regs.len() as u32).to_le_bytes());
    for (reg, c) in regs {
        buf.push(reg);
        put_counts(&mut buf, &c);
    }
    put_counts(&mut buf, &value.unfired());
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> SectionKey {
        SectionKey {
            program: ContentHash(n),
            slice: ContentHash(n ^ 0xABCD),
            config: sor_ace::fault_config_digest(),
        }
    }

    fn outcomes(n: u64) -> SectionOutcomes {
        SectionOutcomes {
            classes: (0..3)
                .map(|i| ClassOutcome {
                    reg: 2 + i as u8,
                    rep: n + i,
                    counts: OutcomeCounts {
                        unace: 60,
                        sdc: 4,
                        recoveries: n,
                        ..OutcomeCounts::default()
                    },
                })
                .collect(),
        }
    }

    fn profile() -> VulnerabilityProfile {
        use sor_sim::{FaultRecord, Outcome};
        let mut p = VulnerabilityProfile::new();
        p.record(
            &FaultRecord {
                spec: FaultSpec::new(3, 2, 5),
                outcome: Outcome::Sdc,
                static_inst: Some(17),
                role: ProtectionRole::Voter,
            },
            2,
        );
        p.record(
            &FaultRecord {
                spec: FaultSpec::new(9, 4, 1),
                outcome: Outcome::UnAce,
                static_inst: None,
                role: ProtectionRole::Original,
            },
            0,
        );
        p
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sor-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_store_round_trips_and_counts() {
        let s = ResultStore::in_memory();
        assert!(s.get_cert(&key(1), |_| true).is_none());
        s.put_cert(key(1), outcomes(7));
        let v = s.get_cert(&key(1), |_| true).expect("hit");
        assert_eq!(*v, outcomes(7));
        assert_eq!((s.hits(), s.misses(), s.warnings()), (1, 1, 0));
        assert!(s.path().is_none());
    }

    #[test]
    fn disk_store_survives_reopen() {
        let dir = temp_dir("reopen");
        {
            let s = ResultStore::open(&dir);
            s.put_cert(key(1), outcomes(7));
            s.put_triage(key(2), profile());
            assert_eq!(s.warnings(), 0);
        }
        let s = ResultStore::open(&dir);
        assert_eq!(s.len(), 2);
        assert_eq!(*s.get_cert(&key(1), |_| true).unwrap(), outcomes(7));
        assert_eq!(*s.get_triage(&key(2), |_| true).unwrap(), profile());
        assert_eq!(s.warnings(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_heals_to_the_intact_prefix() {
        let dir = temp_dir("trunc");
        {
            let s = ResultStore::open(&dir);
            s.put_cert(key(1), outcomes(7));
            s.put_cert(key(2), outcomes(9));
        }
        let path = dir.join("sections.bin");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let s = ResultStore::open(&dir);
        assert_eq!(s.warnings(), 1, "truncation surfaces as one warning");
        assert!(s.get_cert(&key(1), |_| true).is_some(), "prefix intact");
        assert!(s.get_cert(&key(2), |_| true).is_none(), "tail dropped");
        // The file was healed: reopening is warning-free and re-inserting
        // the lost entry persists it again.
        s.put_cert(key(2), outcomes(9));
        let s2 = ResultStore::open(&dir);
        assert_eq!(s2.warnings(), 0);
        assert_eq!(s2.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_record_byte_drops_only_that_record() {
        let dir = temp_dir("fliprec");
        {
            let s = ResultStore::open(&dir);
            s.put_cert(key(1), outcomes(7));
        }
        let path = dir.join("sections.bin");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = HEADER_LEN as usize + 20; // inside the first payload
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let s = ResultStore::open(&dir);
        assert_eq!(s.warnings(), 1);
        assert!(s.get_cert(&key(1), |_| true).is_none());
        assert!(s.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_format_version_discards_the_file() {
        let dir = temp_dir("version");
        {
            let s = ResultStore::open(&dir);
            s.put_cert(key(1), outcomes(7));
        }
        let path = dir.join("sections.bin");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] ^= 0xFF; // version field
        std::fs::write(&path, &bytes).unwrap();
        let s = ResultStore::open(&dir);
        assert_eq!(s.warnings(), 1);
        assert!(s.is_empty());
        // The file was rewritten with a clean current-version header.
        s.put_cert(key(1), outcomes(7));
        let s2 = ResultStore::open(&dir);
        assert_eq!((s2.warnings(), s2.len()), (0, 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn validation_rejection_is_a_warned_miss_that_evicts() {
        let s = ResultStore::in_memory();
        s.put_cert(key(1), outcomes(7));
        assert!(s.get_cert(&key(1), |_| false).is_none());
        assert_eq!((s.hits(), s.misses(), s.warnings()), (0, 1, 1));
        // The poisoned entry is gone, so a re-put re-primes the store.
        s.put_cert(key(1), outcomes(8));
        assert_eq!(*s.get_cert(&key(1), |_| true).unwrap(), outcomes(8));
    }

    #[test]
    fn triage_keys_separate_from_cert_keys() {
        let s = ResultStore::in_memory();
        s.put_cert(key(1), outcomes(7));
        assert!(s.get_triage(&key(1), |_| true).is_none());
        assert_eq!(s.len(), 1);
    }

    /// Two threads hammering disjoint keys through one disk-backed store
    /// serialize through the append lock: every record survives a
    /// reopen intact (no interleaved frames) and nothing warns.
    #[test]
    fn concurrent_writers_never_tear_the_disk_tier() {
        let dir = temp_dir("race");
        let n = 40u64;
        {
            let s = Arc::new(ResultStore::open(&dir));
            let handles: Vec<_> = (0..2)
                .map(|t| {
                    let s = Arc::clone(&s);
                    std::thread::spawn(move || {
                        for i in 0..n {
                            s.put_cert(key(1000 * (t + 1) + i), outcomes(i));
                            s.put_triage(key(5000 * (t + 1) + i), profile());
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(s.warnings(), 0);
            // Read-your-writes: everything is visible in the memory tier.
            assert_eq!(s.len() as u64, 4 * n);
            s.flush();
        }
        let reopened = ResultStore::open(&dir);
        assert_eq!(reopened.warnings(), 0, "a torn frame would warn here");
        assert_eq!(reopened.len() as u64, 4 * n);
        for t in 0..2u64 {
            for i in 0..n {
                let v = reopened
                    .get_cert(&key(1000 * (t + 1) + i), |_| true)
                    .expect("record survived");
                assert_eq!(*v, outcomes(i));
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn triage_section_key_tracks_fault_list_content() {
        let p = ContentHash(42);
        let faults = [FaultSpec::new(1, 2, 3), FaultSpec::new(4, 5, 6)];
        let a = triage_section_key(p, 0, 10, &faults);
        assert_eq!(a, triage_section_key(p, 0, 10, &faults));
        let mut other = faults;
        other[1] = FaultSpec::new(4, 5, 7);
        assert_ne!(a, triage_section_key(p, 0, 10, &other));
        assert_ne!(a, triage_section_key(p, 0, 11, &faults));
        assert_ne!(a, triage_section_key(ContentHash(43), 0, 10, &faults));
    }
}
