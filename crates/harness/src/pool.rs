//! The shared injection worker pool.
//!
//! Every campaign flavour — sampled ([`crate::run_campaign`]), triaged
//! ([`crate::run_triaged_campaign`]) and certified
//! ([`crate::run_certified_campaign`]) — used to carry its own copy of the
//! same loop: resolve the thread count, spawn scoped workers, give each a
//! reusable machine arena, work-steal fault indices off a shared atomic,
//! fold per-worker results, merge commutatively. [`inject_faults`] is that
//! loop, written once, parameterized over the accumulator and the
//! per-record fold.
//!
//! It is also where lane batching composes with work-stealing. With
//! `lanes > 1` the fault list is stably sorted by injection slot and cut
//! into lane-width groups — a *group* becomes the work-stealing unit, and
//! each worker drives a [`sor_sim::LaneReplayer`] instead of a scalar
//! [`sor_sim::Replayer`]. Sorting maximizes the shared lockstep prefix
//! within a group; for certified campaigns, whose flattened fault list is
//! 64 same-slot faults per read-window equivalence class, sorted groups
//! tile the classes exactly (64 is divisible by every supported width).
//! Because every fold target merges commutatively and the fold receives
//! the fault's *original* index, results are bit-identical whatever the
//! thread count, lane width or steal order — the matrix the differential
//! tests pin.

use sor_ir::Program;
use sor_sim::{
    DecodedProg, ExecEngine, FaultRecord, FaultSpec, GenFault, GenFaultRecord, MachineConfig,
    RunResult, Runner,
};
use sor_stats::OutcomeCounts;
use sor_triage::VulnerabilityProfile;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Resolves a configured worker-thread knob (`0` = all available cores)
/// to the actual pool size.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    }
}

/// Resolves a configured lane knob against what the runner can support:
/// lane execution needs the predecoded image, widths are {2, 4, 8, 16} (a
/// request in between rounds down), and anything below 2 is scalar.
pub fn resolve_lanes(runner: &Runner<'_>, lanes: usize) -> usize {
    if runner.decoded().is_none() || lanes < 2 {
        1
    } else if lanes >= 16 {
        16
    } else if lanes >= 8 {
        8
    } else if lanes >= 4 {
        4
    } else {
        2
    }
}

/// Builds the injection runner every campaign flavour shares: the golden
/// run plus checkpoint store, optionally reusing predecoded and compiled
/// native images from the artifact store.
pub(crate) fn build_runner<'p>(
    program: &'p Program,
    decoded: Option<Arc<DecodedProg>>,
    jit: Option<Arc<sor_sim::JitProg>>,
    checkpoint_interval: u64,
    engine: ExecEngine,
) -> Runner<'p> {
    let mcfg = MachineConfig {
        checkpoint_interval,
        engine,
        ..MachineConfig::default()
    };
    Runner::with_images(program, &mcfg, decoded, jit)
}

/// A campaign accumulator: per-worker partial results merge commutatively,
/// so pooled injection is thread-count and steal-order independent.
pub(crate) trait Accumulate: Default + Send {
    fn absorb(&mut self, other: Self);
}

impl Accumulate for OutcomeCounts {
    fn absorb(&mut self, other: Self) {
        *self += other;
    }
}

impl Accumulate for VulnerabilityProfile {
    fn absorb(&mut self, other: Self) {
        self.merge(&other);
    }
}

/// Indexed histogram slots (the certified campaign's per-class counts):
/// workers touch disjoint indices, so element-wise summing reassembles
/// the exact per-slot results.
impl Accumulate for Vec<OutcomeCounts> {
    fn absorb(&mut self, other: Self) {
        if self.len() < other.len() {
            self.resize(other.len(), OutcomeCounts::default());
        }
        for (slot, counts) in self.iter_mut().zip(other) {
            *slot += counts;
        }
    }
}

/// Runs every fault in `faults` across a work-stealing worker pool and
/// folds the provenance-annotated results into an [`Accumulate`] target.
///
/// `fold` is called once per fault with the fault's index in `faults`
/// (original order — lane batching reorders execution, not attribution),
/// its [`FaultRecord`] and the raw [`RunResult`].
pub(crate) fn inject_faults<A, F>(
    runner: &Runner<'_>,
    faults: &[FaultSpec],
    threads: usize,
    lanes: usize,
    fold: F,
) -> A
where
    A: Accumulate,
    F: Fn(&mut A, usize, &FaultRecord, &RunResult) + Sync,
{
    let threads = resolve_threads(threads);
    let lanes = resolve_lanes(runner, lanes);
    let fold = &fold;
    let mut total = A::default();

    if lanes > 1 {
        // Sort (stably) by injection slot so each lane group shares the
        // longest possible pre-fault lockstep prefix, then steal whole
        // groups: one group = one lockstep pack run.
        let mut order: Vec<usize> = (0..faults.len()).collect();
        order.sort_by_key(|&i| faults[i].at_instr);
        let groups: Vec<&[usize]> = order.chunks(lanes).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..threads.max(1).min(groups.len().max(1)) {
                let (groups, next) = (&groups, &next);
                handles.push(scope.spawn(move || {
                    // One lane pack (plus its eviction machines) per
                    // worker, reused across every stolen group.
                    let mut replayer = runner.lane_replayer(lanes);
                    let mut group = Vec::with_capacity(lanes);
                    let mut acc = A::default();
                    loop {
                        let g = next.fetch_add(1, Ordering::Relaxed);
                        let Some(idxs) = groups.get(g) else { break };
                        group.clear();
                        group.extend(idxs.iter().map(|&i| faults[i]));
                        let results = replayer.run_fault_group_records(&group);
                        for (k, (rec, res)) in results.iter().enumerate() {
                            fold(&mut acc, idxs[k], rec, res);
                        }
                    }
                    acc
                }));
            }
            for h in handles {
                total.absorb(h.join().expect("injection worker panicked"));
            }
        });
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..threads.max(1).min(faults.len().max(1)) {
                let next = &next;
                handles.push(scope.spawn(move || {
                    // One reusable machine arena per worker: registers,
                    // frame stack and memory are recycled across runs.
                    let mut replayer = runner.replayer();
                    let mut acc = A::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&fault) = faults.get(i) else { break };
                        let (rec, res) = replayer.run_fault_record(fault);
                        fold(&mut acc, i, &rec, &res);
                    }
                    acc
                }));
            }
            for h in handles {
                total.absorb(h.join().expect("injection worker panicked"));
            }
        });
    }
    total
}

/// [`inject_faults`] over the generalized fault surface: runs every
/// [`GenFault`] across the same work-stealing worker pool and folds the
/// provenance-annotated [`GenFaultRecord`]s.
///
/// Always executes scalar — the SPMD lane engine only vectorizes the
/// single-register-bit SEU effect, so non-default fault models take the
/// scalar fallback regardless of the configured lane width (results are
/// bit-identical to what a lane path would produce by contract, so the
/// fallback is an execution-strategy choice, not a semantic one).
pub(crate) fn inject_gen_faults<A, F>(
    runner: &Runner<'_>,
    faults: &[GenFault],
    threads: usize,
    fold: F,
) -> A
where
    A: Accumulate,
    F: Fn(&mut A, usize, &GenFaultRecord, &RunResult) + Sync,
{
    let threads = resolve_threads(threads);
    let fold = &fold;
    let mut total = A::default();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads.max(1).min(faults.len().max(1)) {
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut replayer = runner.replayer();
                let mut acc = A::default();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&fault) = faults.get(i) else { break };
                    let (rec, res) = replayer.run_fault_record_gen(fault);
                    fold(&mut acc, i, &rec, &res);
                }
                acc
            }));
        }
        for h in handles {
            total.absorb(h.join().expect("injection worker panicked"));
        }
    });
    total
}
