//! The shared program-artifact store.
//!
//! Every consumer of a transformed program — the Figure 8 reliability
//! campaigns, the Figure 9 timing runs, the headline summary that needs
//! both — starts from the same preparation: build the workload module, run
//! the technique's pass pipeline, lower to an executable [`Program`]. Before
//! this store existed each consumer redid that work; `fig8` + `fig9` +
//! `headline` prepared every (workload, technique) pair three times over.
//!
//! [`ArtifactStore`] memoizes the preparation behind an
//! [`ArtifactKey`] — `(source content digest, technique, TransformConfig,
//! LowerConfig)` — and hands out [`Arc`]-shared [`Artifact`]s holding the
//! transformed module, the lowered program and the pipeline's
//! instrumentation report. The store is `Sync`: campaign drivers and
//! figure runners can share one instance across threads.
//!
//! Workload names do not encode their parameters, so a *name* alone cannot
//! distinguish `AdpcmDec { samples: 40 }` from `AdpcmDec { samples: 400 }`.
//! The store used to keep the source [`Module`] inside each artifact and
//! deep-compare it against a fresh build on every hit; the key now carries
//! the source module's [`ContentHash`] instead, so differently
//! parameterized builds of the same workload occupy distinct cache slots
//! and a hit never needs (or stores) the source module at all.

use sor_core::{Pipeline, PipelineReport, Technique, TransformConfig};
use sor_ir::{ContentHash, Digest, Module, Program};
use sor_regalloc::{lower, LowerConfig};
use sor_sim::{DecodedProg, ExecEngine, JitProg};
use sor_workloads::Workload;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The coordinates that fully determine a prepared program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// Workload name ([`Workload::name`]), kept for diagnostics.
    pub workload: String,
    /// Content digest of the untransformed source module — this is what
    /// actually distinguishes same-name, differently-parameterized
    /// workload builds (see the module docs).
    pub source: ContentHash,
    /// Protection technique.
    pub technique: Technique,
    /// Check-placement policy the pipeline ran under.
    pub transform: TransformConfig,
    /// Lowering options.
    pub lower: LowerConfig,
}

/// One fully prepared program: everything downstream of `workload.build()`.
#[derive(Debug)]
pub struct Artifact {
    /// The module after the technique's pipeline.
    pub module: Module,
    /// The lowered executable image.
    pub program: Program,
    /// The program predecoded for the micro-op engine, translated once
    /// here so every campaign/certify/triage consumer of this artifact
    /// shares one image instead of re-decoding per [`sor_sim::Runner`].
    pub decoded: Arc<DecodedProg>,
    /// The native image for the jit engine, compiled lazily on the first
    /// [`Artifact::jit_for`] request so decoded/legacy consumers never pay
    /// for it. `Some(None)` records a failed compilation (degraded to the
    /// decoded interpreter) so it is not retried per runner.
    jit: OnceLock<Option<Arc<JitProg>>>,
    /// Per-pass instrumentation from the pipeline run.
    pub report: PipelineReport,
}

impl Artifact {
    /// The shared native image for `engine`: compiles (once, memoized)
    /// under [`ExecEngine::Jit`], `None` under the other engines or when
    /// native compilation is unavailable (the runner then degrades to the
    /// decoded interpreter).
    pub fn jit_for(&self, engine: ExecEngine) -> Option<Arc<JitProg>> {
        if engine != ExecEngine::Jit {
            return None;
        }
        self.jit
            .get_or_init(|| JitProg::try_compile(&self.decoded, &self.program))
            .clone()
    }
}

/// A memoized map from [`ArtifactKey`] to shared [`Artifact`]s.
///
/// ```
/// use sor_core::{Technique, TransformConfig};
/// use sor_harness::ArtifactStore;
/// use sor_regalloc::LowerConfig;
/// use sor_workloads::AdpcmDec;
///
/// let store = ArtifactStore::new();
/// let w = AdpcmDec { samples: 40, seed: 1 };
/// let tc = TransformConfig::default();
/// let lc = LowerConfig::default();
/// let a = store.get(&w, Technique::SwiftR, &tc, &lc);
/// let b = store.get(&w, Technique::SwiftR, &tc, &lc);
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!((store.misses(), store.hits()), (1, 1));
/// ```
#[derive(Default)]
pub struct ArtifactStore {
    map: Mutex<HashMap<ArtifactKey, Arc<Artifact>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactStore {
    /// An empty store.
    pub fn new() -> Self {
        ArtifactStore::default()
    }

    /// Returns the prepared artifact for the given coordinates, building
    /// (and caching) it on first request.
    ///
    /// The workload module is always rebuilt so its content digest can key
    /// the lookup; only the transform + lower work — the expensive part —
    /// is memoized. The map lock is never held while building, so
    /// concurrent first requests for the same key may both build; they
    /// produce identical artifacts and the last insert wins.
    ///
    /// # Panics
    ///
    /// Panics if lowering fails — same contract as the campaign and perf
    /// drivers, whose results would be meaningless without a program.
    pub fn get(
        &self,
        workload: &dyn Workload,
        technique: Technique,
        transform: &TransformConfig,
        lower_cfg: &LowerConfig,
    ) -> Arc<Artifact> {
        let source = workload.build();
        let key = ArtifactKey {
            workload: workload.name().to_string(),
            source: source.content_digest(),
            technique,
            transform: transform.clone(),
            lower: lower_cfg.clone(),
        };
        let cached = self.map.lock().unwrap().get(&key).cloned();
        if let Some(a) = cached {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return a;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let artifact = Arc::new(build_artifact(source, &key));
        self.map.lock().unwrap().insert(key, Arc::clone(&artifact));
        artifact
    }

    /// Requests served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to build (first requests and parameter-mismatch
    /// fallbacks).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn build_artifact(source: Module, key: &ArtifactKey) -> Artifact {
    let out = Pipeline::for_technique(key.technique)
        .run(&source, &key.transform)
        .expect("verification disabled; passes are infallible");
    let program = lower(&out.module, &key.lower)
        .unwrap_or_else(|e| panic!("{}/{}: {e}", key.workload, key.technique));
    let decoded = Arc::new(DecodedProg::new(&program));
    Artifact {
        module: out.module,
        program,
        decoded,
        jit: OnceLock::new(),
        report: out.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_workloads::AdpcmDec;

    #[test]
    fn hit_shares_the_artifact() {
        let store = ArtifactStore::new();
        let w = AdpcmDec {
            samples: 40,
            seed: 1,
        };
        let tc = TransformConfig::default();
        let lc = LowerConfig::default();
        let a = store.get(&w, Technique::Trump, &tc, &lc);
        let b = store.get(&w, Technique::Trump, &tc, &lc);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn distinct_coordinates_get_distinct_artifacts() {
        let store = ArtifactStore::new();
        let w = AdpcmDec {
            samples: 40,
            seed: 1,
        };
        let tc = TransformConfig::default();
        let lc = LowerConfig::default();
        let noft = store.get(&w, Technique::Noft, &tc, &lc);
        let swiftr = store.get(&w, Technique::SwiftR, &tc, &lc);
        assert!(swiftr.module.inst_count() > noft.module.inst_count());
        let sparse = store.get(
            &w,
            Technique::SwiftR,
            &TransformConfig::addresses_only(),
            &lc,
        );
        assert!(sparse.module.inst_count() < swiftr.module.inst_count());
        assert_eq!(store.hits(), 0);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn parameter_mismatch_never_serves_the_wrong_program() {
        let store = ArtifactStore::new();
        let tc = TransformConfig::default();
        let lc = LowerConfig::default();
        let small = AdpcmDec {
            samples: 40,
            seed: 1,
        };
        let big = AdpcmDec {
            samples: 200,
            seed: 1,
        };
        let a = store.get(&small, Technique::SwiftR, &tc, &lc);
        // Same name, different workload parameters: the source digest in
        // the key keeps them apart, so this is a miss into its own slot.
        let b = store.get(&big, Technique::SwiftR, &tc, &lc);
        assert_eq!(store.hits(), 0);
        assert_eq!(store.misses(), 2);
        assert_eq!(store.len(), 2);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.program, b.program);
        // Both entries serve hits afterwards — unlike the old deep-compare
        // scheme, which rebuilt the mismatched parameterization every time.
        let c = store.get(&small, Technique::SwiftR, &tc, &lc);
        let d = store.get(&big, Technique::SwiftR, &tc, &lc);
        assert!(Arc::ptr_eq(&a, &c));
        assert!(Arc::ptr_eq(&b, &d));
        assert_eq!(store.hits(), 2);
    }

    #[test]
    fn jit_image_is_memoized_per_artifact() {
        let store = ArtifactStore::new();
        let w = AdpcmDec {
            samples: 40,
            seed: 1,
        };
        let a = store.get(
            &w,
            Technique::SwiftR,
            &TransformConfig::default(),
            &LowerConfig::default(),
        );
        assert!(a.jit_for(ExecEngine::Decoded).is_none());
        assert!(a.jit_for(ExecEngine::Legacy).is_none());
        let j1 = a.jit_for(ExecEngine::Jit);
        let j2 = a.jit_for(ExecEngine::Jit);
        match (j1, j2) {
            (Some(x), Some(y)) => assert!(Arc::ptr_eq(&x, &y), "compiled twice"),
            (None, None) => {} // degraded environment stays degraded
            _ => panic!("jit availability flapped between requests"),
        }
    }

    #[test]
    fn artifact_matches_the_direct_path() {
        let store = ArtifactStore::new();
        let w = AdpcmDec {
            samples: 60,
            seed: 2,
        };
        let tc = TransformConfig::default();
        let lc = LowerConfig::default();
        let a = store.get(&w, Technique::TrumpSwiftR, &tc, &lc);
        let direct = Technique::TrumpSwiftR.apply_with(&w.build(), &tc);
        assert_eq!(a.module, direct);
        assert_eq!(a.program, lower(&direct, &lc).unwrap());
        assert!(a.report.totals().fuses > 0 || a.report.totals().votes > 0);
    }
}
