//! Triage-enabled campaigns and residual-SDC attribution.
//!
//! A triaged campaign runs the exact same pre-drawn fault list as
//! [`run_campaign`](crate::run_campaign) — same seed derivation, same
//! work-stealing workers — but each worker records provenance-annotated
//! [`sor_sim::FaultRecord`]s into a local [`VulnerabilityProfile`], and the
//! per-worker profiles are merged (commutatively, so results are
//! thread-count independent) into the campaign profile. The aggregate
//! outcome counts of the profile are identical to the plain campaign's.

use crate::artifact::ArtifactStore;
use crate::campaign::{draw_faults, draw_gen_faults, CampaignConfig, CampaignResult};
use crate::ctrl::RunCtrl;
use crate::pool;
use crate::store::{triage_section_key, ResultStore};
use sor_core::Technique;
use sor_ir::{Digest, Program, ProtectionRole};
use sor_regalloc::LowerConfig;
use sor_sim::DecodedProg;
use sor_stats::OutcomeCounts;
use sor_triage::{SectionalTriage, VulnerabilityProfile};
use sor_workloads::Workload;
use std::sync::Arc;

/// A campaign result plus its per-site vulnerability profile.
#[derive(Debug, Clone)]
pub struct TriagedCampaign {
    /// The campaign summary; `result.counts == profile.totals()`.
    pub result: CampaignResult,
    /// Per-site / per-role / per-register attribution of every injection.
    pub profile: VulnerabilityProfile,
}

/// [`run_campaign`](crate::run_campaign), with per-fault-site triage.
pub fn run_triaged_campaign(
    workload: &dyn Workload,
    technique: Technique,
    cfg: &CampaignConfig,
) -> TriagedCampaign {
    run_triaged_campaign_in(&ArtifactStore::new(), workload, technique, cfg)
}

/// [`run_triaged_campaign`] with program preparation served from a shared
/// [`ArtifactStore`].
pub fn run_triaged_campaign_in(
    store: &ArtifactStore,
    workload: &dyn Workload,
    technique: Technique,
    cfg: &CampaignConfig,
) -> TriagedCampaign {
    let artifact = store.get(workload, technique, &cfg.transform, &LowerConfig::default());
    let (profile, golden_instrs) = inject_profiled(
        &artifact.program,
        Some(Arc::clone(&artifact.decoded)),
        artifact.jit_for(cfg.engine),
        cfg,
        workload.name(),
        technique,
    );
    let result = CampaignResult {
        workload: workload.name().to_string(),
        technique,
        counts: profile.totals(),
        golden_instrs,
    };
    TriagedCampaign { result, profile }
}

/// [`run_triaged_campaign_in`] through the incremental path: the fault
/// list is partitioned into [`SectionalTriage`] sections and each
/// section's profile is served from `results` when its content key —
/// program digest, section bounds + exact fault list, fault model (see
/// [`triage_section_key`]) — matches a stored entry; only missing
/// sections re-inject. The composed profile is bit-identical to the
/// monolithic [`run_triaged_campaign_in`] over the same configuration
/// because the fault list is drawn identically (seed-pinned) and each
/// fault's outcome is a pure function of `(program, fault)`.
pub fn run_triaged_campaign_stored(
    artifacts: &ArtifactStore,
    results: &ResultStore,
    workload: &dyn Workload,
    technique: Technique,
    cfg: &CampaignConfig,
    nsections: usize,
) -> TriagedCampaign {
    match run_triaged_campaign_resumable(
        artifacts,
        results,
        workload,
        technique,
        cfg,
        nsections,
        None,
        &mut |_| {},
    ) {
        TriageStatus::Done(t) => t,
        TriageStatus::Paused(_) => unreachable!("no control, so the driver never pauses"),
    }
}

/// A snapshot of a resumable triaged campaign's position, emitted after
/// every resolved section (and carried by [`TriageStatus::Paused`]).
#[derive(Debug, Clone, Default)]
pub struct TriageProgress {
    /// Sections resolved so far (cached hits + freshly injected).
    pub sections_done: usize,
    /// Sections the fault list was split into.
    pub sections_total: usize,
    /// Sections served from the store without injecting anything.
    pub sections_hit: usize,
    /// Injections executed by this run so far.
    pub fresh_injections: u64,
    /// Outcome histogram aggregated over every resolved section.
    pub counts: OutcomeCounts,
}

/// What a resumable triaged campaign run ended as.
#[derive(Debug, Clone)]
pub enum TriageStatus {
    /// Every section resolved; the composed profile is bit-identical to
    /// the monolithic campaign's.
    Done(TriagedCampaign),
    /// A stop was requested: completed sections are persisted in the
    /// store, and re-invoking with the same arguments resumes from here.
    Paused(TriageProgress),
}

/// [`run_triaged_campaign_stored`], pausable at section boundaries.
///
/// Same contract as [`crate::certify_resumable`]: missing sections
/// inject one at a time, each persisted to `results` as it completes,
/// `on_progress` fires after every resolved section, and a stop request
/// returns [`TriageStatus::Paused`] before the next section starts — a
/// later identical call re-serves the finished sections as hits and
/// executes only the remainder, composing a profile bit-identical to the
/// monolithic campaign however many pauses it took.
#[allow(clippy::too_many_arguments)]
pub fn run_triaged_campaign_resumable(
    artifacts: &ArtifactStore,
    results: &ResultStore,
    workload: &dyn Workload,
    technique: Technique,
    cfg: &CampaignConfig,
    nsections: usize,
    ctrl: Option<&RunCtrl>,
    on_progress: &mut dyn FnMut(&TriageProgress),
) -> TriageStatus {
    let artifact = artifacts.get(workload, technique, &cfg.transform, &LowerConfig::default());
    if !cfg.fault_model.is_default() {
        // Non-default models triage monolithically and bypass the store:
        // `triage_section_key` digests legacy `FaultSpec` lists, which
        // cannot represent generalized effects — a silent alias would be
        // worse than a recompute. One all-or-nothing "section".
        let (profile, golden_instrs) = inject_profiled(
            &artifact.program,
            Some(Arc::clone(&artifact.decoded)),
            artifact.jit_for(cfg.engine),
            cfg,
            workload.name(),
            technique,
        );
        let progress = TriageProgress {
            sections_done: 1,
            sections_total: 1,
            sections_hit: 0,
            fresh_injections: profile.injections(),
            counts: profile.totals(),
        };
        on_progress(&progress);
        let result = CampaignResult {
            workload: workload.name().to_string(),
            technique,
            counts: profile.totals(),
            golden_instrs,
        };
        return TriageStatus::Done(TriagedCampaign { result, profile });
    }
    let runner = pool::build_runner(
        &artifact.program,
        Some(Arc::clone(&artifact.decoded)),
        artifact.jit_for(cfg.engine),
        cfg.checkpoint_interval,
        cfg.engine,
    );
    let golden_instrs = runner.golden().dyn_instrs;
    let faults = draw_faults(cfg, workload.name(), technique, golden_instrs);
    let triage = SectionalTriage::partition(&faults, nsections);
    let program_digest = artifact.program.content_digest();

    let mut progress = TriageProgress {
        sections_total: triage.sections.len(),
        ..TriageProgress::default()
    };
    let mut profile = VulnerabilityProfile::new();
    for section in &triage.sections {
        let key = triage_section_key(program_digest, section.start, section.end, &section.faults);
        let cached = results.get_triage(&key, |p| p.injections() == section.faults.len() as u64);
        let hit = cached.is_some();
        if !hit && ctrl.is_some_and(|c| c.stop_requested()) {
            return TriageStatus::Paused(progress);
        }
        let section_profile = cached.unwrap_or_else(|| {
            let fresh: VulnerabilityProfile = pool::inject_faults(
                &runner,
                &section.faults,
                cfg.threads,
                cfg.lanes,
                |acc: &mut VulnerabilityProfile, _, rec, res| {
                    acc.record(rec, res.probes.vote_repairs + res.probes.trump_recovers);
                },
            );
            results.put_triage(key, fresh)
        });
        profile.merge(&section_profile);
        progress.sections_done += 1;
        if hit {
            progress.sections_hit += 1;
        } else {
            progress.fresh_injections += section.faults.len() as u64;
        }
        progress.counts = profile.totals();
        on_progress(&progress);
    }

    let result = CampaignResult {
        workload: workload.name().to_string(),
        technique,
        counts: profile.totals(),
        golden_instrs,
    };
    TriageStatus::Done(TriagedCampaign { result, profile })
}

fn inject_profiled(
    program: &Program,
    decoded: Option<Arc<DecodedProg>>,
    jit: Option<Arc<sor_sim::JitProg>>,
    cfg: &CampaignConfig,
    wl_name: &str,
    technique: Technique,
) -> (VulnerabilityProfile, u64) {
    let runner = pool::build_runner(program, decoded, jit, cfg.checkpoint_interval, cfg.engine);
    let golden_len = runner.golden().dyn_instrs;
    if !cfg.fault_model.is_default() {
        // Generalized models: model-specific draws, scalar generalized
        // injection, register attribution only where an effect has a
        // victim register (see `VulnerabilityProfile::record_gen`).
        let faults = draw_gen_faults(cfg, wl_name, technique, program, golden_len);
        let whole: VulnerabilityProfile = pool::inject_gen_faults(
            &runner,
            &faults,
            cfg.threads,
            |acc: &mut VulnerabilityProfile, _, rec, res| {
                acc.record_gen(rec, res.probes.vote_repairs + res.probes.trump_recovers);
            },
        );
        return (whole, golden_len);
    }
    let faults = draw_faults(cfg, wl_name, technique, golden_len);
    // Same shared worker pool as the plain campaign; profile merge is
    // commutative and associative, so the merged profile is independent of
    // thread count, lane width and interleaving.
    let whole: VulnerabilityProfile = pool::inject_faults(
        &runner,
        &faults,
        cfg.threads,
        cfg.lanes,
        |acc: &mut VulnerabilityProfile, _, rec, res| {
            acc.record(rec, res.probes.vote_repairs + res.probes.trump_recovers);
        },
    );
    (whole, golden_len)
}

/// Renders the residual-SDC attribution table: for each triaged campaign,
/// how that technique's surviving SDCs (hangs folded in) distribute over
/// the protection roles the faults landed on. A markdown table, one row
/// per campaign, one column per role.
pub fn residual_sdc_table(campaigns: &[TriagedCampaign]) -> String {
    let mut out = String::from("| workload | technique | total SDC |");
    for role in ProtectionRole::ALL {
        out.push_str(&format!(" {role} |"));
    }
    out.push('\n');
    out.push_str("|---|---|---:|");
    for _ in ProtectionRole::ALL {
        out.push_str("---:|");
    }
    out.push('\n');
    for c in campaigns {
        let total_sdc = c.result.counts.sdc + c.result.counts.hang;
        out.push_str(&format!(
            "| {} | {} | {} |",
            c.result.workload, c.result.technique, total_sdc
        ));
        for role in ProtectionRole::ALL {
            let rc = c.profile.role_counts(role);
            let sdc = rc.sdc + rc.hang;
            if total_sdc == 0 {
                out.push_str(&format!(" {sdc} |"));
            } else {
                out.push_str(&format!(
                    " {sdc} ({:.0}%) |",
                    100.0 * sdc as f64 / total_sdc as f64
                ));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use sor_sim::{MachineConfig, Runner};
    use sor_triage::SectionalTriage;
    use sor_workloads::{AdpcmDec, Mpeg2Enc, Workload};

    fn small_cfg() -> CampaignConfig {
        CampaignConfig {
            runs: 60,
            seed: 42,
            threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn triaged_campaign_matches_plain_campaign_counts() {
        let w = AdpcmDec {
            samples: 150,
            seed: 7,
        };
        let plain = run_campaign(&w, Technique::SwiftR, &small_cfg());
        let triaged = run_triaged_campaign(&w, Technique::SwiftR, &small_cfg());
        assert_eq!(triaged.result.counts, plain.counts);
        assert_eq!(triaged.result.golden_instrs, plain.golden_instrs);
        assert_eq!(triaged.profile.totals(), plain.counts);
        assert!(triaged.profile.sites().count() > 0);
    }

    #[test]
    fn triaged_campaign_is_deterministic_across_thread_counts() {
        let w = AdpcmDec {
            samples: 100,
            seed: 3,
        };
        let mut c1 = small_cfg();
        c1.threads = 1;
        let mut c4 = small_cfg();
        c4.threads = 4;
        let a = run_triaged_campaign(&w, Technique::Trump, &c1);
        let b = run_triaged_campaign(&w, Technique::Trump, &c4);
        assert_eq!(a.profile, b.profile);
    }

    /// The sectional-triage exactness pin: composing independently
    /// profiled sections reproduces the monolithic profile bit-for-bit,
    /// across two workloads and three techniques.
    #[test]
    fn sectional_composition_matches_monolithic_bit_for_bit() {
        let store = ArtifactStore::new();
        let workloads: Vec<Box<dyn Workload>> = vec![
            Box::new(AdpcmDec {
                samples: 120,
                seed: 7,
            }),
            Box::new(Mpeg2Enc { blocks: 2, seed: 1 }),
        ];
        let cfg = CampaignConfig {
            runs: 40,
            seed: 11,
            threads: 1,
            ..Default::default()
        };
        for w in &workloads {
            for technique in [Technique::SwiftR, Technique::Trump, Technique::Swift] {
                let artifact = store.get(
                    w.as_ref(),
                    technique,
                    &cfg.transform,
                    &LowerConfig::default(),
                );
                let runner = Runner::new(&artifact.program, &MachineConfig::default());
                let faults = draw_faults(&cfg, w.name(), technique, runner.golden().dyn_instrs);

                let monolithic = SectionalTriage::run(&runner, &faults, 1).compose();
                let mut sectional = SectionalTriage::run(&runner, &faults, 4);
                assert_eq!(
                    sectional.compose(),
                    monolithic,
                    "{}/{technique}: sectional composition diverged",
                    w.name()
                );
                // Re-injecting sections is idempotent: same faults, same
                // deterministic machine, same composed profile.
                sectional.reinject(&runner, &[1, 3]);
                assert_eq!(
                    sectional.compose(),
                    monolithic,
                    "{}/{technique}: re-injection changed the composition",
                    w.name()
                );
            }
        }
    }

    /// Generalized-model triage aggregates exactly the campaign's counts,
    /// and the stored entry point degrades to the same monolithic profile
    /// (the store is SEU-sectional only).
    #[test]
    fn generalized_model_triage_matches_its_campaign_counts() {
        let w = AdpcmDec {
            samples: 100,
            seed: 3,
        };
        let mut cfg = small_cfg();
        cfg.runs = 30;
        cfg.fault_model = sor_models::FaultModel::TransientAlu;
        let plain = run_campaign(&w, Technique::SwiftR, &cfg);
        let triaged = run_triaged_campaign(&w, Technique::SwiftR, &cfg);
        assert_eq!(triaged.result.counts, plain.counts);
        assert_eq!(triaged.profile.totals(), plain.counts);
        let store = crate::store::ResultStore::in_memory();
        let stored = run_triaged_campaign_stored(
            &ArtifactStore::new(),
            &store,
            &w,
            Technique::SwiftR,
            &cfg,
            4,
        );
        assert_eq!(stored.profile, triaged.profile);
        assert!(store.is_empty(), "generalized triage must bypass the store");
    }

    #[test]
    fn attribution_table_lists_roles_and_techniques() {
        let w = AdpcmDec {
            samples: 120,
            seed: 7,
        };
        let results: Vec<TriagedCampaign> = [Technique::Noft, Technique::SwiftR]
            .iter()
            .map(|&t| run_triaged_campaign(&w, t, &small_cfg()))
            .collect();
        let table = residual_sdc_table(&results);
        assert!(table.contains("| adpcmdec | NOFT |"), "{table}");
        assert!(table.contains("SWIFT-R"), "{table}");
        for role in ProtectionRole::ALL {
            assert!(table.contains(&role.to_string()), "{table}");
        }
        // NOFT programs carry no protection instructions, so nothing can
        // be attributed to voter or redundant roles.
        let noft = &results[0];
        assert_eq!(noft.profile.role_counts(ProtectionRole::Voter).total(), 0);
        // SWIFT-R faults do land on transform-introduced instructions.
        let swiftr = &results[1];
        let protected = swiftr
            .profile
            .role_counts(ProtectionRole::Redundant { copy: 1 })
            .total()
            + swiftr
                .profile
                .role_counts(ProtectionRole::Redundant { copy: 2 })
                .total()
            + swiftr.profile.role_counts(ProtectionRole::Voter).total();
        assert!(protected > 0, "no faults attributed to SWIFT-R roles");
    }
}
