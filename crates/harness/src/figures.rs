//! Regeneration of the paper's Figure 8 and Figure 9.

use crate::artifact::ArtifactStore;
use crate::campaign::{run_campaign_in, CampaignConfig, CampaignResult};
use crate::perf::{measure_perf_in, PerfConfig, PerfResult};
use sor_core::Technique;
use sor_stats::OutcomeCounts;
use sor_workloads::Workload;
use std::fmt;

/// Figure 8: reliability percentages per benchmark and technique.
#[derive(Debug, Clone)]
pub struct FigureEight {
    /// One campaign result per (workload, technique), workload-major.
    pub cells: Vec<CampaignResult>,
    /// Workload names in row order.
    pub workloads: Vec<String>,
    /// Techniques in column order (the paper's N/M/T/K/R/S).
    pub techniques: Vec<Technique>,
}

impl FigureEight {
    /// Runs the full reliability matrix over `workloads`.
    pub fn run(workloads: &[Box<dyn Workload>], cfg: &CampaignConfig) -> Self {
        Self::run_with(workloads, &Technique::FIGURE8, cfg)
    }

    /// Runs the matrix with an explicit technique list (e.g. including the
    /// SWIFT detection baseline).
    pub fn run_with(
        workloads: &[Box<dyn Workload>],
        techniques: &[Technique],
        cfg: &CampaignConfig,
    ) -> Self {
        Self::run_in(&ArtifactStore::new(), workloads, techniques, cfg)
    }

    /// Runs the matrix with program preparation served from a shared
    /// [`ArtifactStore`] — pass the same store to [`FigureNine::run_in`]
    /// and the timing runs reuse every program this matrix prepared.
    pub fn run_in(
        store: &ArtifactStore,
        workloads: &[Box<dyn Workload>],
        techniques: &[Technique],
        cfg: &CampaignConfig,
    ) -> Self {
        let mut cells = Vec::new();
        for w in workloads {
            for &t in techniques {
                cells.push(run_campaign_in(store, w.as_ref(), t, cfg));
            }
        }
        FigureEight {
            cells,
            workloads: workloads.iter().map(|w| w.name().to_string()).collect(),
            techniques: techniques.to_vec(),
        }
    }

    /// The cell for (workload, technique).
    pub fn cell(&self, workload: &str, technique: Technique) -> Option<&CampaignResult> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.technique == technique)
    }

    /// Aggregated counts across all benchmarks for one technique (the
    /// paper's "Average" column).
    pub fn average(&self, technique: Technique) -> OutcomeCounts {
        let mut total = OutcomeCounts::default();
        for c in self.cells.iter().filter(|c| c.technique == technique) {
            total += c.counts;
        }
        total
    }

    /// Renders the paper's stacked-bar chart in text: one bar per
    /// (benchmark, technique), unACE `█`, SEGV `▒`, SDC `░`, 50 columns
    /// per 100%.
    pub fn to_chart(&self) -> String {
        const WIDTH: f64 = 50.0;
        let mut s =
            String::from("Figure 8 (chart): \u{2588} unACE   \u{2592} SEGV   \u{2591} SDC\n");
        for w in &self.workloads {
            s.push('\n');
            for &t in &self.techniques {
                let Some(c) = self.cell(w, t) else { continue };
                let unace = (c.counts.pct_unace() / 100.0 * WIDTH).round() as usize;
                let segv = (c.counts.pct_segv() / 100.0 * WIDTH).round() as usize;
                let sdc = (WIDTH as usize).saturating_sub(unace + segv);
                s.push_str(&format!(
                    "{:<10} {} |{}{}{}| {:>5.1}%\n",
                    w,
                    t.letter(),
                    "█".repeat(unace),
                    "▒".repeat(segv),
                    "░".repeat(sdc),
                    c.counts.pct_unace()
                ));
            }
        }
        s
    }

    /// CSV form (one row per cell).
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "workload,technique,runs,unace_pct,sdc_pct,segv_pct,recoveries,golden_instrs\n",
        );
        for c in &self.cells {
            s.push_str(&format!(
                "{},{},{},{:.2},{:.2},{:.2},{},{}\n",
                c.workload,
                c.technique,
                c.counts.total(),
                c.counts.pct_unace(),
                c.counts.pct_sdc(),
                c.counts.pct_segv(),
                c.counts.recoveries,
                c.golden_instrs,
            ));
        }
        s
    }

    /// JSON form (one object per cell), mirroring [`to_csv`](Self::to_csv).
    pub fn to_json(&self) -> String {
        self.to_json_model(sor_models::FaultModel::SeuReg)
    }

    /// [`to_json`](Self::to_json) with an explicit fault model: each cell
    /// gains a `"fault_model"` field for non-default models, while the
    /// default renders byte-identically to the legacy document.
    pub fn to_json_model(&self, model: sor_models::FaultModel) -> String {
        let tag = if model.is_default() {
            String::new()
        } else {
            format!("\"fault_model\": \"{}\", ", model.slug())
        };
        let rows: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                format!(
                    "  {{\"workload\": \"{}\", \"technique\": \"{}\", {}\"runs\": {}, \
                     \"unace_pct\": {:.2}, \"sdc_pct\": {:.2}, \"segv_pct\": {:.2}, \
                     \"recoveries\": {}, \"golden_instrs\": {}}}",
                    c.workload,
                    c.technique,
                    tag,
                    c.counts.total(),
                    c.counts.pct_unace(),
                    c.counts.pct_sdc(),
                    c.counts.pct_segv(),
                    c.counts.recoveries,
                    c.golden_instrs,
                )
            })
            .collect();
        format!("[\n{}\n]\n", rows.join(",\n"))
    }
}

impl fmt::Display for FigureEight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 8: reliability percentage (unACE / SEGV / SDC) per technique"
        )?;
        write!(f, "{:<12}", "benchmark")?;
        for t in &self.techniques {
            write!(f, " | {:^20}", format!("{} ({})", t, t.letter()))?;
        }
        writeln!(f)?;
        let width = 12 + self.techniques.len() * 23;
        writeln!(f, "{}", "-".repeat(width))?;
        for w in &self.workloads {
            write!(f, "{w:<12}")?;
            for &t in &self.techniques {
                if let Some(c) = self.cell(w, t) {
                    write!(
                        f,
                        " | {:>5.1} /{:>5.1} /{:>5.1}",
                        c.counts.pct_unace(),
                        c.counts.pct_segv(),
                        c.counts.pct_sdc()
                    )?;
                }
            }
            writeln!(f)?;
        }
        writeln!(f, "{}", "-".repeat(width))?;
        write!(f, "{:<12}", "Average")?;
        for &t in &self.techniques {
            let a = self.average(t);
            write!(
                f,
                " | {:>5.1} /{:>5.1} /{:>5.1}",
                a.pct_unace(),
                a.pct_segv(),
                a.pct_sdc()
            )?;
        }
        writeln!(f)
    }
}

/// Figure 9: execution time normalized to NOFT.
#[derive(Debug, Clone)]
pub struct FigureNine {
    /// One timing result per (workload, technique), workload-major;
    /// includes NOFT.
    pub cells: Vec<PerfResult>,
    /// Workload names in row order.
    pub workloads: Vec<String>,
    /// Techniques in column order.
    pub techniques: Vec<Technique>,
}

impl FigureNine {
    /// Times every workload under every Figure 9 technique.
    pub fn run(workloads: &[Box<dyn Workload>], cfg: &PerfConfig) -> Self {
        Self::run_in(&ArtifactStore::new(), workloads, cfg)
    }

    /// [`FigureNine::run`] with program preparation served from a shared
    /// [`ArtifactStore`].
    pub fn run_in(
        store: &ArtifactStore,
        workloads: &[Box<dyn Workload>],
        cfg: &PerfConfig,
    ) -> Self {
        let techniques = Technique::FIGURE8.to_vec();
        let mut cells = Vec::new();
        for w in workloads {
            for &t in &techniques {
                cells.push(measure_perf_in(store, w.as_ref(), t, cfg));
            }
        }
        FigureNine {
            cells,
            workloads: workloads.iter().map(|w| w.name().to_string()).collect(),
            techniques,
        }
    }

    fn cycles(&self, workload: &str, technique: Technique) -> Option<u64> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.technique == technique)
            .map(|c| c.cycles)
    }

    /// Normalized execution time of (workload, technique) vs NOFT.
    pub fn normalized(&self, workload: &str, technique: Technique) -> Option<f64> {
        let noft = self.cycles(workload, Technique::Noft)?;
        let t = self.cycles(workload, technique)?;
        Some(t as f64 / noft.max(1) as f64)
    }

    /// Geometric mean of the normalized execution time across benchmarks.
    pub fn geomean(&self, technique: Technique) -> f64 {
        let logs: Vec<f64> = self
            .workloads
            .iter()
            .filter_map(|w| self.normalized(w, technique))
            .map(f64::ln)
            .collect();
        if logs.is_empty() {
            return f64::NAN;
        }
        (logs.iter().sum::<f64>() / logs.len() as f64).exp()
    }

    /// CSV form.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("workload,technique,cycles,dyn_instrs,ipc,normalized\n");
        for c in &self.cells {
            s.push_str(&format!(
                "{},{},{},{},{:.3},{:.3}\n",
                c.workload,
                c.technique,
                c.cycles,
                c.dyn_instrs,
                c.ipc(),
                self.normalized(&c.workload, c.technique).unwrap_or(1.0),
            ));
        }
        s
    }

    /// JSON form (one object per cell), mirroring [`to_csv`](Self::to_csv).
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                format!(
                    "  {{\"workload\": \"{}\", \"technique\": \"{}\", \"cycles\": {}, \
                     \"dyn_instrs\": {}, \"ipc\": {:.3}, \"normalized\": {:.3}}}",
                    c.workload,
                    c.technique,
                    c.cycles,
                    c.dyn_instrs,
                    c.ipc(),
                    self.normalized(&c.workload, c.technique).unwrap_or(1.0),
                )
            })
            .collect();
        format!("[\n{}\n]\n", rows.join(",\n"))
    }
}

impl fmt::Display for FigureNine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 9: execution time normalized to NOFT")?;
        write!(f, "{:<12}", "benchmark")?;
        for t in self.techniques.iter().filter(|&&t| t != Technique::Noft) {
            write!(f, " | {:>13}", t.to_string())?;
        }
        writeln!(f)?;
        let cols = self.techniques.len() - 1;
        writeln!(f, "{}", "-".repeat(12 + cols * 16))?;
        for w in &self.workloads {
            write!(f, "{w:<12}")?;
            for &t in self.techniques.iter().filter(|&&t| t != Technique::Noft) {
                write!(f, " | {:>13.2}", self.normalized(w, t).unwrap_or(f64::NAN))?;
            }
            writeln!(f)?;
        }
        writeln!(f, "{}", "-".repeat(12 + cols * 16))?;
        write!(f, "{:<12}", "GeoMean")?;
        for &t in self.techniques.iter().filter(|&&t| t != Technique::Noft) {
            write!(f, " | {:>13.2}", self.geomean(t))?;
        }
        writeln!(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_workloads::{AdpcmDec, Mpeg2Enc};

    fn tiny_suite() -> Vec<Box<dyn Workload>> {
        vec![
            Box::new(AdpcmDec {
                samples: 80,
                seed: 1,
            }),
            Box::new(Mpeg2Enc { blocks: 2, seed: 1 }),
        ]
    }

    #[test]
    fn figure8_runs_and_formats() {
        let cfg = CampaignConfig {
            runs: 25,
            threads: 2,
            ..Default::default()
        };
        let fig = FigureEight::run(&tiny_suite(), &cfg);
        assert_eq!(fig.cells.len(), 2 * Technique::FIGURE8.len());
        let text = fig.to_string();
        assert!(text.contains("Average"), "{text}");
        let csv = fig.to_csv();
        assert!(csv.lines().count() == 1 + fig.cells.len(), "{csv}");
        let avg = fig.average(Technique::Noft);
        assert_eq!(avg.total(), 50);
        let chart = fig.to_chart();
        assert!(chart.contains('█'), "{chart}");
        // One bar per cell.
        assert_eq!(
            chart.lines().filter(|l| l.contains('|')).count(),
            fig.cells.len()
        );
        let json = fig.to_json();
        assert_eq!(
            json.matches("\"workload\"").count(),
            fig.cells.len(),
            "{json}"
        );
        assert!(json.contains("\"unace_pct\""), "{json}");
    }

    /// Both figures through one store: every Figure 9 cell reuses the
    /// program its Figure 8 twin prepared, and nothing changes in either
    /// figure's numbers.
    #[test]
    fn figures_share_one_artifact_store() {
        let cfg = CampaignConfig {
            runs: 25,
            threads: 2,
            ..Default::default()
        };
        let suite = tiny_suite();
        let store = ArtifactStore::new();
        let fig8 = FigureEight::run_in(&store, &suite, &Technique::FIGURE8, &cfg);
        let cells = 2 * Technique::FIGURE8.len() as u64;
        assert_eq!(store.hits(), 0);
        assert_eq!(store.misses(), cells);
        let fig9 = FigureNine::run_in(&store, &suite, &PerfConfig::default());
        assert_eq!(store.hits(), cells, "every fig9 cell must hit");

        let fresh8 = FigureEight::run(&suite, &cfg);
        let fresh9 = FigureNine::run(&suite, &PerfConfig::default());
        for (a, b) in fig8.cells.iter().zip(&fresh8.cells) {
            assert_eq!(a.counts, b.counts, "{}/{}", a.workload, a.technique);
        }
        for (a, b) in fig9.cells.iter().zip(&fresh9.cells) {
            assert_eq!(a.cycles, b.cycles, "{}/{}", a.workload, a.technique);
        }
    }

    #[test]
    fn figure9_normalizes_to_noft() {
        let fig = FigureNine::run(&tiny_suite(), &PerfConfig::default());
        assert!((fig.normalized("adpcmdec", Technique::Noft).unwrap() - 1.0).abs() < 1e-12);
        let s = fig.geomean(Technique::SwiftR);
        assert!(s > 1.0 && s < 4.0, "geomean {s}");
        assert!(fig.to_string().contains("GeoMean"));
    }
}
