//! Deprecated re-export shim: [`OutcomeCounts`] and [`wilson_ci`] moved
//! to the `sor-stats` crate (and stay re-exported at the harness crate
//! root for compatibility). Depend on `sor-stats` directly.
#![allow(deprecated)]

#[deprecated(
    since = "0.1.0",
    note = "use the sor-stats crate (or the sor_harness crate-root re-exports) directly"
)]
pub use sor_stats::wilson_ci;

#[deprecated(
    since = "0.1.0",
    note = "use the sor-stats crate (or the sor_harness crate-root re-exports) directly"
)]
pub use sor_stats::OutcomeCounts;
