//! Outcome aggregation — re-exported from [`sor_stats`], where the types
//! moved so the triage subsystem can share them without depending on the
//! whole harness.

pub use sor_stats::{wilson_ci, OutcomeCounts};
