//! # sor-harness — fault campaigns and figure regeneration
//!
//! Reproduces the paper's evaluation methodology (§7):
//!
//! * [`run_campaign`] — for one (workload, technique) pair: transform,
//!   lower, run the golden execution, then inject `runs` SEUs at uniformly
//!   random (dynamic instruction, integer register, bit) points and classify
//!   each run as unACE / SDC / SEGV (plus hang and detected, folded per the
//!   paper's three-bucket taxonomy). Runs are spread across threads.
//! * [`FigureEight`] — the full reliability matrix of Figure 8: six
//!   techniques x ten benchmarks plus the Average column.
//! * [`FigureNine`] — normalized execution time (timing model cycles,
//!   normalized to NOFT) per benchmark plus the GeoMean, Figure 9.
//! * [`headline`] — the paper's summary numbers (§1/§9): average unACE per
//!   technique, SDC+SEGV reduction vs NOFT, mean normalized runtime.
//! * [`ArtifactStore`] — the shared program-artifact store: campaigns,
//!   timing runs and the figures memoize the transform + lower preparation
//!   behind a `(source digest, technique, TransformConfig, LowerConfig)`
//!   key, so `fig8` + `fig9` + `headline` prepare each program once instead
//!   of three times. The `*_in` entry points ([`run_campaign_in`],
//!   [`measure_perf_in`], [`FigureEight::run_in`], [`FigureNine::run_in`])
//!   take an explicit store; the plain entry points use a private one.
//! * [`ResultStore`] — the two-tier (memory + on-disk) content-addressed
//!   *result* store: certification and triage outcomes keyed by
//!   `(program digest, section digest, fault-model digest)` section keys
//!   (see [`sor_ace::SectionKey`]), so re-certification after an edit
//!   re-executes only the sections whose inputs actually changed.
//!   [`certify_incremental`] / [`run_certified_campaign_stored`] and
//!   [`run_triaged_campaign_stored`] compose cached and fresh sections
//!   into results bit-identical to their monolithic counterparts
//!   (DESIGN.md §14 gives the soundness argument).
//! * [`run_triaged_campaign`] — the same campaign with per-fault
//!   attribution: every injection also feeds a
//!   `sor_triage::VulnerabilityProfile` keyed by the static instruction's
//!   provenance (pc, `ProtectionRole`), merged across worker threads.
//!   [`residual_sdc_table`] renders the cross-technique residual-SDC-by-role
//!   markdown table used by the `triage` report binary.
//! * [`run_certified_campaign`] — the exhaustive, exact counterpart to the
//!   sampled campaign: `sor_ace` liveness analysis prunes provably-unACE
//!   sites and collapses the rest into read-window equivalence classes,
//!   and only the class representatives are executed (same
//!   checkpoint-and-replay + work-stealing machinery). The resulting
//!   [`CertifiedCoverage`](sor_ace::CertifiedCoverage) covers *every*
//!   (slot, register, bit) site with exact unACE/SDC/DUE fractions and
//!   per-role attribution — no Wilson interval.

mod artifact;
mod campaign;
mod certify;
mod ctrl;
mod figures;
mod perf;
mod pool;
mod render;
mod report;
mod store;
mod triage;

pub use artifact::{Artifact, ArtifactKey, ArtifactStore};
pub use campaign::{run_campaign, run_campaign_in, CampaignConfig, CampaignResult};
pub use certify::{
    certify_incremental, certify_program, certify_program_model, certify_program_with,
    certify_resumable, run_certified_campaign, run_certified_campaign_in,
    run_certified_campaign_stored, CertifyConfig, CertifyProgress, CertifyStatus,
    IncrementalCertification,
};
pub use ctrl::RunCtrl;
pub use figures::{FigureEight, FigureNine};
pub use perf::{measure_perf, measure_perf_in, PerfConfig, PerfResult};
pub use pool::{resolve_lanes, resolve_threads};
pub use render::{
    certified_json, certified_json_model, technique_slug, triage_json, triage_json_model,
};
pub use report::{headline, Headline};
pub use sor_models::{FaultModel, SampleCtx};
pub use sor_sim::{ExecEngine, JitProg};
pub use sor_stats::{wilson_ci, OutcomeCounts};
pub use store::{triage_section_key, ResultStore, STORE_FORMAT_VERSION};
pub use triage::{
    residual_sdc_table, run_triaged_campaign, run_triaged_campaign_in,
    run_triaged_campaign_resumable, run_triaged_campaign_stored, TriageProgress, TriageStatus,
    TriagedCampaign,
};
