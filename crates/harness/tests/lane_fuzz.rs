//! Seeded randomized divergence fuzz for lane-batched injection.
//!
//! The lanes differential matrix pins curated fault batteries; this fuzz
//! pins *randomly grouped* ones: groups of random size (1..=width) with
//! uniformly sampled `FaultSpec`s — slots deliberately drawn past the end
//! of the run as well as inside it — executed at every lane width over
//! several checkpoint intervals, each compared bit-for-bit against the
//! scalar decoded replayer (full `FaultRecord` plus raw `RunResult`, which
//! subsumes outcome histograms). Two engineered edge shapes ride along in
//! every cell:
//!
//! * **zero divergence** — a whole group of past-end slots: no lane ever
//!   injects, the pack runs the entire program in lockstep and every lane
//!   finishes via the shared-terminal eviction at the outermost return;
//! * **maximum divergence** — all lanes flip bit 63 of different
//!   registers at the same early slot: the lanes that survive to the
//!   first branch or address use scatter immediately, draining the pack
//!   through the divergence-eviction path one anomaly at a time.

use sor_core::Technique;
use sor_harness::{ArtifactStore, FaultModel, SampleCtx};
use sor_regalloc::LowerConfig;
use sor_rng::SmallRng;
use sor_sim::{ExecEngine, FaultSpec, GenFault, MachineConfig, Runner, INJECTABLE_REGS};
use sor_workloads::{AdpcmDec, Art, Mpeg2Enc, Workload};
use std::sync::Arc;

fn fuzz_cell(w: &dyn Workload, technique: Technique, interval: u64, seed: u64) {
    let store = ArtifactStore::new();
    let artifact = store.get(w, technique, &Default::default(), &LowerConfig::default());
    let runner = Runner::with_decoded(
        &artifact.program,
        &MachineConfig {
            engine: ExecEngine::Decoded,
            checkpoint_interval: interval,
            ..MachineConfig::default()
        },
        Some(Arc::clone(&artifact.decoded)),
    );
    let golden_len = runner.golden().dyn_instrs;
    let label = format!("{}/{technique}/interval {interval}", w.name());
    let mut rng = SmallRng::seed_from_u64(seed ^ golden_len);
    let mut scalar = runner.replayer();

    for lanes in [2usize, 4, 8, 16] {
        let mut lane_replayer = runner.lane_replayer(lanes);
        let mut groups: Vec<Vec<FaultSpec>> = Vec::new();
        for _ in 0..12 {
            let size = 1 + (rng.gen_range(0, lanes as u64) as usize);
            groups.push(
                (0..size)
                    // Head room above golden_len draws past-end slots too:
                    // faults that never fire must also batch exactly.
                    .map(|_| FaultSpec::sample(&mut rng, golden_len + 8))
                    .collect(),
            );
        }
        // Zero-divergence edge: nobody injects, full-run lockstep.
        groups.push(
            (0..lanes)
                .map(|k| FaultSpec::new(golden_len + 1 + k as u64, 3, 5))
                .collect(),
        );
        // Maximum-divergence edge: every lane takes a high-bit hit on a
        // different register at the same early slot.
        let slot = rng.gen_range(0, golden_len.clamp(1, 50));
        groups.push(
            INJECTABLE_REGS
                .iter()
                .take(lanes)
                .map(|&reg| FaultSpec::new(slot, reg, 63))
                .collect(),
        );

        for group in &groups {
            let got = lane_replayer.run_fault_group_records(group);
            assert_eq!(got.len(), group.len(), "{label}");
            for (k, lane_out) in got.iter().enumerate() {
                let scalar_out = scalar.run_fault_record(group[k]);
                assert_eq!(
                    *lane_out, scalar_out,
                    "{label}: {} diverged at {lanes} lanes (group {group:?})",
                    group[k]
                );
            }
        }
    }
}

/// The fault-model column of the fuzz: randomized draws from every
/// generalized fault model — including slots pushed past the end of the
/// run — replayed on the decoded and legacy engines and pinned
/// bit-for-bit (record and raw result). Lane batching is deliberately
/// absent here: generalized effects take the scalar path by design, and
/// the campaign-level scalar-fallback equivalence is pinned in the
/// differential matrix; this fuzz pins the scalar replay itself.
fn fuzz_models_cell(w: &dyn Workload, technique: Technique, seed: u64) {
    let store = ArtifactStore::new();
    let artifact = store.get(w, technique, &Default::default(), &LowerConfig::default());
    let decoded = Runner::with_decoded(
        &artifact.program,
        &MachineConfig {
            engine: ExecEngine::Decoded,
            checkpoint_interval: 7,
            ..MachineConfig::default()
        },
        Some(Arc::clone(&artifact.decoded)),
    );
    let legacy = Runner::new(
        &artifact.program,
        &MachineConfig {
            engine: ExecEngine::Legacy,
            checkpoint_interval: 7,
            ..MachineConfig::default()
        },
    );
    let golden_len = legacy.golden().dyn_instrs;
    let ctx = SampleCtx::for_program(&artifact.program, golden_len);
    let mut rng = SmallRng::seed_from_u64(seed ^ golden_len);
    let mut d_replayer = decoded.replayer();
    let mut l_replayer = legacy.replayer();
    for model in FaultModel::ALL {
        let label = format!("{}/{technique}/{model}", w.name());
        for i in 0..10u64 {
            let mut fault = model.sample(&mut rng, &ctx);
            // Every third draw is shifted past the end of the run: faults
            // that never fire must classify unACE on both engines too.
            if i % 3 == 2 {
                fault = GenFault::new(golden_len + 1 + i, fault.effect);
            }
            let (d_rec, d_res) = d_replayer.run_fault_record_gen(fault);
            let (l_rec, l_res) = l_replayer.run_fault_record_gen(fault);
            assert_eq!(d_rec, l_rec, "{label}: record diverged across engines");
            assert_eq!(d_res, l_res, "{label}: result diverged across engines");
        }
    }
}

#[test]
fn fuzzed_generalized_models_match_across_engines() {
    let w = AdpcmDec {
        samples: 80,
        seed: 7,
    };
    fuzz_models_cell(&w, Technique::SwiftR, 0x90DE1);
    fuzz_models_cell(&w, Technique::Cfcss, 0x90DE2);
    let w2 = Mpeg2Enc { blocks: 2, seed: 1 };
    fuzz_models_cell(&w2, Technique::Ceda, 0x90DE3);
}

#[test]
fn fuzzed_lane_groups_match_scalar_on_integer_dsp() {
    let w = AdpcmDec {
        samples: 80,
        seed: 7,
    };
    for (interval, seed) in [(0u64, 0xF00D), (11, 0xBEEF)] {
        fuzz_cell(&w, Technique::SwiftR, interval, seed);
    }
    fuzz_cell(&w, Technique::Trump, 7, 0x7007);
}

#[test]
fn fuzzed_lane_groups_match_scalar_on_block_transform() {
    let w = Mpeg2Enc { blocks: 2, seed: 1 };
    fuzz_cell(&w, Technique::Swift, 0, 0xA11CE);
    fuzz_cell(&w, Technique::SwiftR, 9, 0xB0B);
}

#[test]
fn fuzzed_lane_groups_match_scalar_on_float_workload() {
    let w = Art {
        neurons: 4,
        inputs: 4,
        epochs: 2,
        seed: 3,
    };
    fuzz_cell(&w, Technique::SwiftR, 13, 0xF10A7);
    fuzz_cell(&w, Technique::Noft, 0, 0x0F7);
}
