//! Decoded-vs-legacy differential matrix: the predecoded micro-op engine
//! must be observationally indistinguishable from the legacy step
//! interpreter. Every cell of `Technique::ALL x workloads` pins, across
//! both engines:
//!
//! * the golden [`RunResult`] (status, output, dynamic count, probes),
//! * the recorded checkpoint sequence, snapshot by snapshot (via
//!   [`Checkpoint::fingerprint`], which digests every architectural field),
//! * the def-use trace event stream (slots, check pcs, read/write masks),
//! * seeded fault injections, as full provenance-annotated
//!   [`FaultRecord`]s plus raw results — including `fault_pc`,
//! * whole campaign histograms under identical seeds.
//!
//! The lanes column extends the matrix along a third axis: lane-batched
//! SPMD execution ([`sor_sim::LaneReplayer`]) at widths 2/4/8 must be
//! bit-identical to scalar decoded replay — per-fault records, sampled
//! and triaged campaign histograms, and certified-coverage reports alike.
//!
//! The jit column extends it along a fourth: the native x86-64 superblock
//! JIT ([`sor_sim::JitProg`]) services fault slots, probes, fuel and
//! checkpoint boundaries only at span edges, so every cell above must
//! also hold with `jit == decoded == legacy`. Where native compilation is
//! unavailable the jit engine degrades to the decoded interpreter, and
//! the same assertions pin the fallback instead.

use sor_core::Technique;
use sor_harness::{
    run_campaign, run_certified_campaign, run_triaged_campaign, ArtifactStore, CampaignConfig,
    CertifyConfig, FaultModel, SampleCtx,
};
use sor_regalloc::LowerConfig;
use sor_rng::SmallRng;
use sor_sim::{ExecEngine, FaultSpec, MachineConfig, Runner, TraceSink};
use sor_workloads::{AdpcmDec, Art, Mpeg2Dec, Mpeg2Enc, Workload};
use std::sync::Arc;

/// Small parameterizations of four structurally different workloads:
/// integer DSP (adpcmdec), block transforms (mpeg2dec/enc) and a
/// float-heavy neural net (art) — enough to exercise every micro-op family
/// including the FPU, conversions and calls.
fn workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(AdpcmDec {
            samples: 80,
            seed: 7,
        }),
        Box::new(Mpeg2Dec { blocks: 3, seed: 2 }),
        Box::new(Mpeg2Enc { blocks: 2, seed: 1 }),
        Box::new(Art {
            neurons: 4,
            inputs: 4,
            epochs: 2,
            seed: 3,
        }),
    ]
}

fn engine_cfg(engine: ExecEngine, checkpoint_interval: u64) -> MachineConfig {
    MachineConfig {
        engine,
        checkpoint_interval,
        ..MachineConfig::default()
    }
}

#[derive(Default, PartialEq, Debug)]
struct VecSink(Vec<(u64, usize, u32, u32)>);

impl TraceSink for VecSink {
    fn record(&mut self, slot: u64, check_pc: usize, reads: u32, writes: u32) {
        self.0.push((slot, check_pc, reads, writes));
    }
}

/// The headline oracle: on every technique x workload cell, golden run,
/// checkpoint stream, trace stream and a seeded battery of fault
/// injections agree bit-for-bit between the two engines.
#[test]
fn decoded_engine_matches_legacy_bit_for_bit() {
    let store = ArtifactStore::new();
    for w in &workloads() {
        for technique in Technique::ALL {
            let artifact = store.get(
                w.as_ref(),
                technique,
                &Default::default(),
                &LowerConfig::default(),
            );
            let label = format!("{}/{technique}", w.name());
            // Interval 7 forces many mid-frame, mid-loop snapshots even on
            // these small runs.
            let decoded = Runner::with_decoded(
                &artifact.program,
                &engine_cfg(ExecEngine::Decoded, 7),
                Some(Arc::clone(&artifact.decoded)),
            );
            let legacy = Runner::new(&artifact.program, &engine_cfg(ExecEngine::Legacy, 7));
            let jit = Runner::with_images(
                &artifact.program,
                &engine_cfg(ExecEngine::Jit, 7),
                Some(Arc::clone(&artifact.decoded)),
                artifact.jit_for(ExecEngine::Jit),
            );
            assert!(decoded.decoded().is_some(), "{label}");
            assert!(legacy.decoded().is_none(), "{label}");
            #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
            assert!(jit.jit().is_some(), "{label}: jit must compile natively");

            // Golden runs: the whole observable result, field for field.
            assert_eq!(decoded.golden(), legacy.golden(), "{label}: golden run");
            assert_eq!(jit.golden(), legacy.golden(), "{label}: jit golden run");

            // Checkpoints: same capture points, same architectural state.
            let (d_cps, l_cps, j_cps) = (
                decoded.checkpoints(),
                legacy.checkpoints(),
                jit.checkpoints(),
            );
            assert_eq!(d_cps.len(), l_cps.len(), "{label}: checkpoint count");
            assert_eq!(j_cps.len(), l_cps.len(), "{label}: jit checkpoint count");
            assert!(d_cps.len() > 2, "{label}: interval 7 must checkpoint");
            for ((d, l), j) in d_cps
                .as_slice()
                .iter()
                .zip(l_cps.as_slice())
                .zip(j_cps.as_slice())
            {
                assert_eq!(d.at, l.at, "{label}: checkpoint slot");
                assert_eq!(j.at, l.at, "{label}: jit checkpoint slot");
                assert_eq!(
                    d.fingerprint(),
                    l.fingerprint(),
                    "{label}: checkpoint state diverged at slot {}",
                    d.at
                );
                assert_eq!(
                    j.fingerprint(),
                    l.fingerprint(),
                    "{label}: jit checkpoint state diverged at slot {}",
                    j.at
                );
            }

            // Def-use traces: identical event streams, identical results.
            let (mut d_sink, mut l_sink, mut j_sink) =
                (VecSink::default(), VecSink::default(), VecSink::default());
            let d_traced = decoded.trace_golden(&mut d_sink);
            let l_traced = legacy.trace_golden(&mut l_sink);
            let j_traced = jit.trace_golden(&mut j_sink);
            assert_eq!(d_traced, l_traced, "{label}: traced run");
            assert_eq!(j_traced, l_traced, "{label}: jit traced run");
            assert_eq!(d_sink, l_sink, "{label}: trace events");
            assert_eq!(j_sink, l_sink, "{label}: jit trace events");

            // Seeded faults plus targeted boundary slots (first, near-end,
            // past-end): full records and raw results must match, which
            // pins outcome, fault_pc/role attribution, output, dynamic
            // count and probe counters at once.
            let golden_len = legacy.golden().dyn_instrs;
            let mut rng = SmallRng::seed_from_u64(0xD1FF ^ golden_len);
            let mut faults: Vec<FaultSpec> = (0..16)
                .map(|_| FaultSpec::sample(&mut rng, golden_len))
                .collect();
            faults.push(FaultSpec::new(0, 3, 63));
            faults.push(FaultSpec::new(golden_len - 1, 4, 1));
            faults.push(FaultSpec::new(golden_len + 9, 5, 2));
            let mut d_replayer = decoded.replayer();
            let mut l_replayer = legacy.replayer();
            let mut j_replayer = jit.replayer();
            let mut scalar_records = Vec::new();
            for &f in &faults {
                let (d_rec, d_res) = d_replayer.run_fault_record(f);
                let (l_rec, l_res) = l_replayer.run_fault_record(f);
                let (j_rec, j_res) = j_replayer.run_fault_record(f);
                assert_eq!(d_rec, l_rec, "{label}: {f} record diverged");
                assert_eq!(d_res, l_res, "{label}: {f} result diverged");
                assert_eq!(j_rec, l_rec, "{label}: {f} jit record diverged");
                assert_eq!(j_res, l_res, "{label}: {f} jit result diverged");
                scalar_records.push((d_rec, d_res));
            }

            // The lanes column: the same battery, grouped into lockstep
            // packs of every supported width, must reproduce the scalar
            // records and results bit-for-bit.
            for lanes in [2, 4, 8, 16] {
                let mut lane_replayer = decoded.lane_replayer(lanes);
                for (chunk_idx, group) in faults.chunks(lanes).enumerate() {
                    let got = lane_replayer.run_fault_group_records(group);
                    for (k, lane_rec) in got.iter().enumerate() {
                        let scalar = &scalar_records[chunk_idx * lanes + k];
                        assert_eq!(
                            *lane_rec, *scalar,
                            "{label}: {} diverged at {lanes} lanes",
                            group[k]
                        );
                    }
                }
            }
        }
    }
}

/// Same-seed campaigns classify identically whichever engine runs them —
/// the whole histogram, not just totals.
#[test]
fn campaign_histograms_agree_across_engines() {
    let w = AdpcmDec {
        samples: 100,
        seed: 3,
    };
    for technique in [Technique::SwiftR, Technique::Trump] {
        let cfg = |engine| CampaignConfig {
            runs: 40,
            seed: 11,
            threads: 2,
            engine,
            ..Default::default()
        };
        let d = run_campaign(&w, technique, &cfg(ExecEngine::Decoded));
        let l = run_campaign(&w, technique, &cfg(ExecEngine::Legacy));
        let j = run_campaign(&w, technique, &cfg(ExecEngine::Jit));
        assert_eq!(d.counts, l.counts, "{technique}: histogram diverged");
        assert_eq!(d.golden_instrs, l.golden_instrs, "{technique}");
        assert_eq!(j.counts, l.counts, "{technique}: jit histogram diverged");
        assert_eq!(j.golden_instrs, l.golden_instrs, "{technique}: jit");
    }
}

/// The lanes-vs-scalar campaign matrix: across three techniques and three
/// structurally different workloads, lane-batched campaigns at every
/// supported width reproduce the scalar histograms exactly — sampled
/// counts, the full triaged vulnerability profile, and the complete
/// certified-coverage report (per-site and per-role maps included).
#[test]
fn lane_campaigns_match_scalar_across_matrix() {
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(AdpcmDec {
            samples: 60,
            seed: 7,
        }),
        Box::new(Mpeg2Dec { blocks: 2, seed: 2 }),
        Box::new(Mpeg2Enc { blocks: 2, seed: 1 }),
    ];
    for w in &workloads {
        for technique in [Technique::SwiftR, Technique::Trump, Technique::Swift] {
            let label = format!("{}/{technique}", w.name());
            let cfg = |lanes, engine| CampaignConfig {
                runs: 48,
                seed: 11,
                threads: 2,
                lanes,
                engine,
                ..Default::default()
            };
            let scalar = run_campaign(w.as_ref(), technique, &cfg(1, ExecEngine::Decoded));
            for lanes in [2, 4, 8, 16] {
                let laned = run_campaign(w.as_ref(), technique, &cfg(lanes, ExecEngine::Decoded));
                assert_eq!(
                    laned.counts, scalar.counts,
                    "{label}: {lanes}-lane histogram diverged"
                );
                assert_eq!(laned.golden_instrs, scalar.golden_instrs, "{label}");
            }
            let jit = run_campaign(w.as_ref(), technique, &cfg(1, ExecEngine::Jit));
            assert_eq!(jit.counts, scalar.counts, "{label}: jit histogram diverged");
            assert_eq!(jit.golden_instrs, scalar.golden_instrs, "{label}: jit");
            let triaged_scalar =
                run_triaged_campaign(w.as_ref(), technique, &cfg(1, ExecEngine::Decoded));
            let triaged_laned =
                run_triaged_campaign(w.as_ref(), technique, &cfg(8, ExecEngine::Decoded));
            assert_eq!(
                triaged_laned.profile, triaged_scalar.profile,
                "{label}: triage profile diverged under lanes"
            );
            let triaged_jit = run_triaged_campaign(w.as_ref(), technique, &cfg(1, ExecEngine::Jit));
            assert_eq!(
                triaged_jit.profile, triaged_scalar.profile,
                "{label}: triage profile diverged under jit"
            );
        }
    }
}

/// Certified campaigns — the exhaustive, exact fault-space reports — are
/// unchanged by lane batching, down to every per-site and per-role count.
#[test]
fn lane_certified_campaigns_match_scalar() {
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(AdpcmDec {
            samples: 4,
            seed: 1,
        }),
        Box::new(Mpeg2Dec { blocks: 1, seed: 2 }),
        Box::new(Mpeg2Enc { blocks: 1, seed: 1 }),
    ];
    for w in &workloads {
        for technique in [Technique::SwiftR, Technique::Trump, Technique::Swift] {
            let label = format!("{}/{technique}", w.name());
            let cfg = |lanes, engine| CertifyConfig {
                threads: 2,
                lanes,
                engine,
                ..Default::default()
            };
            let scalar =
                run_certified_campaign(w.as_ref(), technique, &cfg(1, ExecEngine::Decoded));
            for lanes in [4, 8] {
                let laned =
                    run_certified_campaign(w.as_ref(), technique, &cfg(lanes, ExecEngine::Decoded));
                assert_eq!(
                    laned, scalar,
                    "{label}: certified report diverged at {lanes} lanes"
                );
            }
            let jit = run_certified_campaign(w.as_ref(), technique, &cfg(1, ExecEngine::Jit));
            assert_eq!(jit, scalar, "{label}: certified report diverged under jit");
        }
    }
}

/// The fault-model column of the matrix: every generalized fault model is
/// pinned decoded == legacy, both per-fault (full provenance records plus
/// raw results over model-sampled batteries) and per-campaign (identical
/// histograms under identical seeds). A lanes sub-column rides along:
/// campaigns requesting lane batching under a non-default model take the
/// scalar-fallback path and must still be bit-identical to an explicitly
/// scalar campaign.
#[test]
fn generalized_fault_models_match_across_engines_and_lanes() {
    let store = ArtifactStore::new();
    let w = AdpcmDec {
        samples: 60,
        seed: 7,
    };
    for technique in [Technique::SwiftR, Technique::Cfcss] {
        let artifact = store.get(&w, technique, &Default::default(), &LowerConfig::default());
        let decoded = Runner::with_decoded(
            &artifact.program,
            &engine_cfg(ExecEngine::Decoded, 7),
            Some(Arc::clone(&artifact.decoded)),
        );
        let legacy = Runner::new(&artifact.program, &engine_cfg(ExecEngine::Legacy, 7));
        let jit = Runner::with_images(
            &artifact.program,
            &engine_cfg(ExecEngine::Jit, 7),
            Some(Arc::clone(&artifact.decoded)),
            artifact.jit_for(ExecEngine::Jit),
        );
        let golden_len = legacy.golden().dyn_instrs;
        let ctx = SampleCtx::for_program(&artifact.program, golden_len);
        for model in FaultModel::ALL {
            let label = format!("{}/{technique}/{model}", w.name());
            let mut rng = SmallRng::seed_from_u64(0x40DE1 ^ golden_len);
            let mut d_replayer = decoded.replayer();
            let mut l_replayer = legacy.replayer();
            let mut j_replayer = jit.replayer();
            for _ in 0..12 {
                let fault = model.sample(&mut rng, &ctx);
                let (d_rec, d_res) = d_replayer.run_fault_record_gen(fault);
                let (l_rec, l_res) = l_replayer.run_fault_record_gen(fault);
                let (j_rec, j_res) = j_replayer.run_fault_record_gen(fault);
                assert_eq!(d_rec, l_rec, "{label}: record diverged across engines");
                assert_eq!(d_res, l_res, "{label}: result diverged across engines");
                assert_eq!(j_rec, l_rec, "{label}: jit record diverged across engines");
                assert_eq!(j_res, l_res, "{label}: jit result diverged across engines");
            }

            let cfg = |engine, lanes| CampaignConfig {
                runs: 32,
                seed: 11,
                threads: 2,
                lanes,
                engine,
                fault_model: model,
                ..Default::default()
            };
            let d = run_campaign(&w, technique, &cfg(ExecEngine::Decoded, 1));
            let l = run_campaign(&w, technique, &cfg(ExecEngine::Legacy, 1));
            assert_eq!(
                d.counts, l.counts,
                "{label}: histogram diverged across engines"
            );
            assert_eq!(d.golden_instrs, l.golden_instrs, "{label}");
            let j = run_campaign(&w, technique, &cfg(ExecEngine::Jit, 1));
            assert_eq!(
                j.counts, l.counts,
                "{label}: jit histogram diverged across engines"
            );
            let laned = run_campaign(&w, technique, &cfg(ExecEngine::Decoded, 8));
            assert_eq!(
                laned.counts, d.counts,
                "{label}: lane-requested campaign diverged from scalar"
            );
        }
    }
}

/// Checkpointing stays an engine-independent pure optimization: decoded
/// replay with checkpoints equals legacy from-scratch execution, the
/// strongest cross-engine x cross-strategy cell of the matrix.
#[test]
fn decoded_checkpointed_replay_matches_legacy_from_scratch() {
    let store = ArtifactStore::new();
    let w = AdpcmDec {
        samples: 60,
        seed: 9,
    };
    let artifact = store.get(
        &w,
        Technique::SwiftR,
        &Default::default(),
        &LowerConfig::default(),
    );
    let decoded = Runner::with_decoded(
        &artifact.program,
        &engine_cfg(ExecEngine::Decoded, 5),
        Some(Arc::clone(&artifact.decoded)),
    );
    let jit = Runner::with_images(
        &artifact.program,
        &engine_cfg(ExecEngine::Jit, 5),
        Some(Arc::clone(&artifact.decoded)),
        artifact.jit_for(ExecEngine::Jit),
    );
    let legacy_scratch = Runner::new(&artifact.program, &engine_cfg(ExecEngine::Legacy, 0));
    let golden_len = legacy_scratch.golden().dyn_instrs;
    let mut rng = SmallRng::seed_from_u64(0xCAFE);
    let mut d_replayer = decoded.replayer();
    let mut j_replayer = jit.replayer();
    let mut l_replayer = legacy_scratch.replayer();
    for _ in 0..24 {
        let f = FaultSpec::sample(&mut rng, golden_len);
        let (d_outcome, d_res) = d_replayer.run_fault(f);
        let (j_outcome, j_res) = j_replayer.run_fault(f);
        let (l_outcome, l_res) = l_replayer.run_fault(f);
        assert_eq!(d_outcome, l_outcome, "{f}");
        assert_eq!(d_res, l_res, "{f}");
        assert_eq!(j_outcome, l_outcome, "{f}: jit");
        assert_eq!(j_res, l_res, "{f}: jit");
    }
}
