//! Seeded randomized-**program** fuzz for the native superblock JIT.
//!
//! The lanes fuzz (`lane_fuzz.rs`) randomizes *faults* over curated
//! workloads; this fuzz randomizes the **program itself**: seeded modules
//! drawn from the full builder surface — every [`AluOp`] at both widths
//! (div/rem with guarded divisors, since a zero divisor is a machine
//! fault), every [`CmpOp`] as both `cmp` and `fcmp`, selects,
//! zero/sign-extending loads and stores at every [`MemWidth`], float
//! arithmetic including division, int↔float conversions, counted loops
//! and data-dependent diamonds — then pins golden runs and seeded fault
//! batteries (in-run and past-end slots) bit-for-bit across all three
//! engines. The point is to exercise superblock shapes no curated
//! workload contains: the JIT's side-exit stubs (div/rem, `CvtFI`) abut
//! random neighbours, spans begin and end at arbitrary ops, and the
//! span-edge contract has to hold for all of them.

use sor_core::{Pipeline, Technique, TransformConfig};
use sor_ir::{
    AluOp, CmpOp, FpOp, FunctionBuilder, MemWidth, Module, ModuleBuilder, Operand, Vreg, Width,
};
use sor_regalloc::{lower, LowerConfig};
use sor_rng::SmallRng;
use sor_sim::{DecodedProg, ExecEngine, FaultSpec, MachineConfig, Runner};
use std::sync::Arc;

const ALU_OPS: [AluOp; 13] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::DivU,
    AluOp::DivS,
    AluOp::RemU,
    AluOp::RemS,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::ShrL,
    AluOp::ShrA,
];
const WIDTHS: [Width; 2] = [Width::W32, Width::W64];
const MEM_WIDTHS: [MemWidth; 4] = [MemWidth::B1, MemWidth::B2, MemWidth::B4, MemWidth::B8];
const FP_OPS: [FpOp; 4] = [FpOp::Add, FpOp::Sub, FpOp::Mul, FpOp::Div];

/// Live value pools the generator draws operands from and feeds results
/// back into. Only straight-line regions may grow the pools: values
/// defined inside a diamond arm would be undefined on the other path.
struct Pools {
    ints: Vec<Vreg>,
    floats: Vec<Vreg>,
}

impl Pools {
    fn int(&self, rng: &mut SmallRng) -> Vreg {
        *rng.choose(&self.ints)
    }
    fn float(&self, rng: &mut SmallRng) -> Vreg {
        *rng.choose(&self.floats)
    }
    /// Replaces a random pool slot so later ops consume earlier results.
    fn put_int(&mut self, rng: &mut SmallRng, v: Vreg) {
        let slot = rng.gen_range(0, self.ints.len() as u64) as usize;
        self.ints[slot] = v;
    }
    fn put_float(&mut self, rng: &mut SmallRng, v: Vreg) {
        let slot = rng.gen_range(0, self.floats.len() as u64) as usize;
        self.floats[slot] = v;
    }
}

/// Either a pooled register or a random immediate.
fn int_operand(rng: &mut SmallRng, p: &Pools) -> Operand {
    if rng.gen_bool() {
        Operand::reg(p.int(rng))
    } else {
        Operand::imm(rng.next_u64() as i64)
    }
}

/// Appends one random straight-line op to the current block, feeding the
/// result (if any) back into the pools.
fn random_op(f: &mut FunctionBuilder, rng: &mut SmallRng, p: &mut Pools, ibase: Vreg, fbase: Vreg) {
    match rng.gen_range(0, 12) {
        // Integer ALU over the full op table, both widths. Division and
        // remainder guard the divisor with `| 1`: a zero divisor is a
        // SEGV-class machine fault and the golden run must complete.
        0..=2 => {
            let op = *rng.choose(&ALU_OPS);
            let width = *rng.choose(&WIDTHS);
            let a = int_operand(rng, p);
            let b = if matches!(op, AluOp::DivU | AluOp::DivS | AluOp::RemU | AluOp::RemS) {
                let raw = int_operand(rng, p);
                Operand::reg(f.or(width, raw, 1i64))
            } else if matches!(op, AluOp::Shl | AluOp::ShrL | AluOp::ShrA) && rng.gen_bool() {
                Operand::imm(rng.gen_range(0, 64) as i64)
            } else {
                int_operand(rng, p)
            };
            let v = f.alu(op, width, a, b);
            p.put_int(rng, v);
        }
        // Compare + select: every CmpOp, both widths.
        3 => {
            let op = *rng.choose(&CmpOp::ALL);
            let width = *rng.choose(&WIDTHS);
            let (a, b) = (int_operand(rng, p), int_operand(rng, p));
            let c = f.cmp(op, width, a, b);
            let (t, e) = (int_operand(rng, p), int_operand(rng, p));
            let v = f.select(c, t, e);
            p.put_int(rng, v);
        }
        // Zero- or sign-extending load at every width, aligned in-bounds.
        4 | 5 => {
            let k = rng.gen_range(0, MEM_WIDTHS.len() as u64) as usize;
            let bytes = [1u64, 2, 4, 8][k];
            let off = (rng.gen_range(0, INT_WORDS * 8 / bytes) * bytes) as i64;
            let v = if rng.gen_bool() {
                f.load(MEM_WIDTHS[k], ibase, off)
            } else {
                f.loads(MEM_WIDTHS[k], ibase, off)
            };
            p.put_int(rng, v);
        }
        // Store at every width, aligned in-bounds; later loads observe it.
        6 => {
            let k = rng.gen_range(0, MEM_WIDTHS.len() as u64) as usize;
            let bytes = [1u64, 2, 4, 8][k];
            let off = (rng.gen_range(0, INT_WORDS * 8 / bytes) * bytes) as i64;
            let src = int_operand(rng, p);
            f.store(MEM_WIDTHS[k], ibase, off, src);
        }
        // Float arithmetic, including division (IEEE: inf/NaN propagate
        // identically on every engine; the assert below is the proof).
        7 | 8 => {
            let op = *rng.choose(&FP_OPS);
            let (a, b) = (p.float(rng), p.float(rng));
            let v = f.fpu(op, a, b);
            p.put_float(rng, v);
        }
        // Float compare feeds the int pool; conversions cross back.
        9 => {
            let op = *rng.choose(&CmpOp::ALL);
            let (a, b) = (p.float(rng), p.float(rng));
            let v = f.fcmp(op, a, b);
            p.put_int(rng, v);
        }
        10 => {
            if rng.gen_bool() {
                let v = f.cvt_if(p.int(rng));
                p.put_float(rng, v);
            } else {
                // CvtFI side-exits in the JIT (x86 indefinite vs. Rust
                // saturation); random huge floats land here on purpose.
                let v = f.cvt_fi(p.float(rng));
                p.put_int(rng, v);
            }
        }
        // Float memory traffic plus the occasional mid-loop observation.
        _ => {
            let off = (rng.gen_range(0, FLOAT_WORDS) * 8) as i64;
            if rng.gen_bool() {
                let v = f.fload(fbase, off);
                p.put_float(rng, v);
            } else {
                f.fstore(fbase, off, p.float(rng));
            }
            if rng.gen_bool() {
                f.emit(Operand::reg(p.int(rng)));
            }
        }
    }
}

const INT_WORDS: u64 = 32;
const FLOAT_WORDS: u64 = 8;
const LOOP_TRIPS: i64 = 3;

/// Builds a seeded random module: global int/float arrays, a counted
/// loop whose body is a run of random ops followed by a data-dependent
/// diamond, and a tail that emits every live pool value.
fn random_module(seed: u64, body_ops: usize) -> Module {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut mb = ModuleBuilder::new(format!("jit-fuzz-{seed:#x}"));
    let ints: Vec<u64> = (0..INT_WORDS).map(|_| rng.next_u64()).collect();
    let floats: Vec<f64> = (0..FLOAT_WORDS)
        .map(|_| rng.gen_range_i64(-4096, 4096) as f64 / 16.0)
        .collect();
    let g_ints = mb.alloc_global_u64s("ints", &ints);
    let g_floats = mb.alloc_global_f64s("floats", &floats);

    let mut f = mb.function("main");
    let ibase = f.movi(g_ints as i64);
    let fbase = f.movi(g_floats as i64);
    let mut pools = Pools {
        ints: (0..6).map(|_| f.movi(rng.next_u64() as i64)).collect(),
        floats: (0..4)
            .map(|_| f.fmovi(rng.gen_range_i64(-256, 256) as f64 / 8.0))
            .collect(),
    };
    let acc = f.movi(0);
    let trip = f.movi(0);

    let header = f.block();
    let body = f.block();
    let then_b = f.block();
    let else_b = f.block();
    let latch = f.block();
    let exit = f.block();
    f.jump(header);

    f.switch_to(header);
    let c = f.cmp(CmpOp::LtS, Width::W64, trip, LOOP_TRIPS);
    f.branch(c, body, exit);

    f.switch_to(body);
    for _ in 0..body_ops {
        random_op(&mut f, &mut rng, &mut pools, ibase, fbase);
    }
    // Data-dependent diamond: which arm runs varies per trip, so the
    // superblock boundary at the branch is crossed both ways.
    let parity = f.and(Width::W64, pools.int(&mut rng), 1i64);
    f.branch(parity, then_b, else_b);

    f.switch_to(then_b);
    let t_add = f.add(Width::W64, acc, pools.int(&mut rng));
    f.mov_to(acc, t_add);
    f.jump(latch);

    f.switch_to(else_b);
    let e_xor = f.xor(Width::W64, acc, pools.int(&mut rng));
    f.mov_to(acc, e_xor);
    f.jump(latch);

    f.switch_to(latch);
    let next = f.add(Width::W64, trip, 1i64);
    f.mov_to(trip, next);
    f.jump(header);

    f.switch_to(exit);
    f.emit(Operand::reg(acc));
    for k in 0..pools.ints.len() {
        f.emit(Operand::reg(pools.ints[k]));
    }
    for k in 0..pools.floats.len() {
        f.emitf(pools.floats[k]);
    }
    // Read stored bytes back so store corruption is observable output.
    let rb = f.load(MemWidth::B8, ibase, 0);
    f.emit(Operand::reg(rb));
    let frb = f.fload(fbase, 0);
    f.emitf(frb);
    f.ret(&[]);
    let id = f.finish();
    mb.finish(id)
}

/// One fuzz cell: build the random module, run it through `technique`'s
/// pipeline, lower, then pin the golden run and a seeded fault battery
/// (in-run, boundary and past-end slots) across legacy, decoded and jit.
fn fuzz_jit_cell(seed: u64, technique: Technique, interval: u64) {
    let module = random_module(seed, 48);
    let out = Pipeline::for_technique(technique)
        .run(&module, &TransformConfig::default())
        .expect("verification disabled; passes are infallible");
    let program = lower(&out.module, &LowerConfig::default())
        .unwrap_or_else(|e| panic!("seed {seed:#x}/{technique}: {e}"));
    let decoded = Arc::new(DecodedProg::new(&program));
    let cfg = |engine| MachineConfig {
        engine,
        checkpoint_interval: interval,
        ..MachineConfig::default()
    };
    let legacy = Runner::new(&program, &cfg(ExecEngine::Legacy));
    let dec = Runner::with_decoded(
        &program,
        &cfg(ExecEngine::Decoded),
        Some(Arc::clone(&decoded)),
    );
    let jit = Runner::with_images(&program, &cfg(ExecEngine::Jit), Some(decoded), None);
    let label = format!("seed {seed:#x}/{technique}/interval {interval}");
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    assert!(
        jit.jit().is_some(),
        "{label}: random program must compile natively"
    );

    assert_eq!(legacy.golden(), dec.golden(), "{label}: golden (legacy)");
    assert_eq!(dec.golden(), jit.golden(), "{label}: golden (jit)");
    let golden_len = jit.golden().dyn_instrs;

    let mut rng = SmallRng::seed_from_u64(seed ^ golden_len);
    let (mut l, mut d, mut j) = (legacy.replayer(), dec.replayer(), jit.replayer());
    let mut battery: Vec<FaultSpec> = (0..30)
        // Head room past golden_len draws never-fired faults too: they
        // must classify unACE on all three engines.
        .map(|_| FaultSpec::sample(&mut rng, golden_len + 8))
        .collect();
    // Deterministic boundary slots: the very first and very last
    // fault-eligible instructions, and one just past the end.
    battery.push(FaultSpec::new(0, 3, 62));
    battery.push(FaultSpec::new(golden_len - 1, 4, 1));
    battery.push(FaultSpec::new(golden_len, 5, 0));

    for fault in &battery {
        let (l_rec, l_res) = l.run_fault_record(*fault);
        let (d_rec, d_res) = d.run_fault_record(*fault);
        let (j_rec, j_res) = j.run_fault_record(*fault);
        assert_eq!(l_rec, d_rec, "{label}: {fault} record (legacy vs decoded)");
        assert_eq!(l_res, d_res, "{label}: {fault} result (legacy vs decoded)");
        assert_eq!(d_rec, j_rec, "{label}: {fault} record (decoded vs jit)");
        assert_eq!(d_res, j_res, "{label}: {fault} result (decoded vs jit)");
    }
}

#[test]
fn fuzzed_raw_programs_match_across_engines() {
    fuzz_jit_cell(0x1A57, Technique::Noft, 0);
    fuzz_jit_cell(0x2B58, Technique::Noft, 7);
    fuzz_jit_cell(0x3C59, Technique::Noft, 5);
}

#[test]
fn fuzzed_protected_programs_match_across_engines() {
    fuzz_jit_cell(0xD1CE, Technique::SwiftR, 7);
    fuzz_jit_cell(0xFACE, Technique::SwiftR, 0);
    fuzz_jit_cell(0xC0DE, Technique::Cfcss, 9);
}
