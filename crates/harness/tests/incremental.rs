//! The incremental-recertification exactness pins (DESIGN.md §14).
//!
//! `certify_incremental` must compose cached and freshly executed
//! sections into a [`CertifiedCoverage`] bit-identical to the monolithic
//! `certify_program`, whatever the store's history: cold, warm, primed by
//! a different program, or recovered from a damaged disk file. The
//! differential mutation test is the soundness guard the design document
//! names — edit one workload function and exactly the dependent sections
//! (every section of the edited program, since its content digest is in
//! every one of its keys — and *no* section of any other program)
//! re-execute.

use sor_core::Technique;
use sor_harness::{
    certify_incremental, certify_program, run_triaged_campaign_in, run_triaged_campaign_stored,
    ArtifactStore, CampaignConfig, CertifyConfig, ResultStore,
};
use sor_ir::{MemWidth, ModuleBuilder, Operand, Program, Width};
use sor_regalloc::{lower, LowerConfig};
use sor_workloads::AdpcmDec;
use std::path::PathBuf;

const TECHNIQUES: [Technique; 3] = [Technique::SwiftR, Technique::Trump, Technique::Swift];

/// Micro workload 1: an arithmetic chain, parameterized by the seed
/// immediate so "editing one workload function" is one knob away.
fn chain_program(technique: Technique, imm: i64) -> Program {
    let mut mb = ModuleBuilder::new("chain");
    let mut f = mb.function("main");
    let a = f.movi(imm);
    let b = f.mul(Width::W64, a, 3i64);
    let c = f.add(Width::W64, b, a);
    let d = f.xor(Width::W64, c, 0x5Ai64);
    f.emit(Operand::reg(d));
    f.ret(&[]);
    let id = f.finish();
    lower(&technique.apply(&mb.finish(id)), &LowerConfig::default()).unwrap()
}

/// Micro workload 2: memory traffic and a select, so the certified cube
/// contains SEGV and detected outcomes too.
fn mem_program(technique: Technique) -> Program {
    let mut mb = ModuleBuilder::new("memsel");
    let g = mb.alloc_global_u64s("g", &[9, 0]);
    let mut f = mb.function("main");
    let base = f.movi(g as i64);
    let x = f.load(MemWidth::B8, base, 0);
    let y = f.add(Width::W64, x, 5i64);
    f.store(MemWidth::B8, base, 8, y);
    let back = f.load(MemWidth::B8, base, 8);
    let cond = f.cmp(sor_ir::CmpOp::LtS, Width::W64, back, 100i64);
    let z = f.select(cond, back, x);
    f.emit(Operand::reg(z));
    f.ret(&[]);
    let id = f.finish();
    lower(&technique.apply(&mb.finish(id)), &LowerConfig::default()).unwrap()
}

fn cfg() -> CertifyConfig {
    CertifyConfig {
        threads: 2,
        sections: 4,
        ..CertifyConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sor-incr-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Cold and warm incremental certification both equal the monolithic
/// report bit-for-bit, on 2 workloads x 3 techniques; the warm pass
/// executes zero injections.
#[test]
fn incremental_equals_monolithic_cold_and_warm() {
    for technique in TECHNIQUES {
        for (name, program) in [
            ("chain", chain_program(technique, 11)),
            ("memsel", mem_program(technique)),
        ] {
            let label = format!("{name}/{technique}");
            let reference = certify_program(&program, name, &technique.to_string(), 2, 3);
            let store = ResultStore::in_memory();
            let cold = certify_incremental(
                &store,
                &program,
                None,
                None,
                name,
                &technique.to_string(),
                &cfg(),
            );
            assert_eq!(cold.coverage, reference, "{label}: cold diverged");
            assert_eq!(cold.sections_hit, 0, "{label}: cold store served hits");
            let warm = certify_incremental(
                &store,
                &program,
                None,
                None,
                name,
                &technique.to_string(),
                &cfg(),
            );
            assert_eq!(warm.coverage, reference, "{label}: warm diverged");
            assert_eq!(warm.fresh_injections, 0, "{label}: warm re-injected");
            assert_eq!(
                warm.sections_hit, warm.sections_total,
                "{label}: warm missed sections"
            );
        }
    }
}

/// The DESIGN.md §14 differential guard: mutate one workload function and
/// exactly the dependent sections re-execute. The mutated program's
/// digest is a component of every one of its section keys, so *all* its
/// sections are dependent and re-execute (served results stay
/// bit-identical to a cold monolithic run of the mutated program); the
/// co-resident un-edited program's sections are untouched and keep
/// serving hits without a single injection.
#[test]
fn mutating_one_workload_reexecutes_exactly_its_sections() {
    for technique in TECHNIQUES {
        let label = format!("mutation/{technique}");
        let edited_v1 = chain_program(technique, 11);
        let edited_v2 = chain_program(technique, 12); // the one-line edit
        let bystander = mem_program(technique);

        let store = ResultStore::in_memory();
        certify_incremental(&store, &edited_v1, None, None, "chain", "t", &cfg());
        certify_incremental(&store, &bystander, None, None, "memsel", "t", &cfg());

        // Re-certifying the edited program: every section is dependent
        // (its program digest changed), so none may hit...
        let edited = certify_incremental(&store, &edited_v2, None, None, "chain", "t", &cfg());
        assert_eq!(edited.sections_hit, 0, "{label}: served a stale section");
        assert!(edited.fresh_injections > 0, "{label}: nothing re-executed");
        let reference = certify_program(&edited_v2, "chain", "t", 1, 0);
        assert_eq!(edited.coverage, reference, "{label}: edited run diverged");

        // ...while the bystander program's sections are exactly the
        // non-dependent set: all of them still hit, zero injections.
        let untouched = certify_incremental(&store, &bystander, None, None, "memsel", "t", &cfg());
        assert_eq!(
            untouched.fresh_injections, 0,
            "{label}: bystander re-executed"
        );
        assert_eq!(untouched.sections_hit, untouched.sections_total);

        // Both versions of the edited program now coexist in the store:
        // re-certifying v1 is warm too (the store is content-addressed,
        // not latest-wins).
        let v1_again = certify_incremental(&store, &edited_v1, None, None, "chain", "t", &cfg());
        assert_eq!(v1_again.fresh_injections, 0, "{label}: v1 evicted");
        assert_eq!(
            v1_again.coverage,
            certify_program(&edited_v1, "chain", "t", 1, 0),
            "{label}: v1 diverged"
        );
    }
}

/// Store damage never changes results, only recomputes them: a truncated
/// tail and a stale format version each fall back to a warned recompute
/// whose report stays bit-identical through the full certify path.
#[test]
fn damaged_disk_store_recovers_with_identical_results() {
    let technique = Technique::SwiftR;
    let program = mem_program(technique);
    let reference = certify_program(&program, "memsel", "SWIFT-R", 2, 3);
    let dir = temp_dir("damage");

    // Prime a healthy on-disk store.
    {
        let store = ResultStore::open(&dir);
        let cold = certify_incremental(&store, &program, None, None, "memsel", "SWIFT-R", &cfg());
        assert_eq!(cold.coverage, reference);
        assert_eq!(store.warnings(), 0);
    }
    let path = dir.join("sections.bin");

    // Truncate mid-record: the store heals to the intact prefix, the
    // missing sections recompute, and the report is unchanged.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
    {
        let store = ResultStore::open(&dir);
        assert!(store.warnings() > 0, "truncation must surface a warning");
        let r = certify_incremental(&store, &program, None, None, "memsel", "SWIFT-R", &cfg());
        assert_eq!(r.coverage, reference, "post-truncation report diverged");
        assert!(r.sections_hit < r.sections_total, "damage cost no section");
    }

    // Stale format version: the whole file is discarded (warned), then
    // transparently rebuilt by the recompute.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    {
        let store = ResultStore::open(&dir);
        assert!(store.warnings() > 0, "stale version must surface a warning");
        let r = certify_incremental(&store, &program, None, None, "memsel", "SWIFT-R", &cfg());
        assert_eq!(r.coverage, reference, "post-version-bump report diverged");
        assert_eq!(r.sections_hit, 0, "discarded store cannot serve hits");
    }

    // The rebuilt store is healthy again: fully warm, no warnings.
    {
        let store = ResultStore::open(&dir);
        assert_eq!(store.warnings(), 0);
        let r = certify_incremental(&store, &program, None, None, "memsel", "SWIFT-R", &cfg());
        assert_eq!(r.coverage, reference);
        assert_eq!(r.fresh_injections, 0);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Back-compat with stores written before the fault-model subsystem:
/// those files carry format version 1 (their section keys were built
/// from the pre-`CERT_SEMANTICS_VERSION`-2 config digest, so no record
/// in them can ever legally match a current key). A version-1 file must
/// be detected as stale on open, discarded with a warning, and the
/// recompute must be bit-identical to a cold run — never a silent
/// partial reuse.
#[test]
fn pre_fault_model_store_is_detected_stale_and_recomputed_identically() {
    assert_eq!(
        sor_harness::STORE_FORMAT_VERSION,
        2,
        "this test emulates a version-1 store; revisit it on the next bump"
    );
    let technique = Technique::SwiftR;
    let program = mem_program(technique);
    let reference = certify_program(&program, "memsel", "SWIFT-R", 2, 3);
    let dir = temp_dir("precompat");

    // Prime a healthy store, then rewrite its header version to 1 — the
    // byte layout is otherwise unchanged, which is exactly the dangerous
    // case: every record would parse, but under obsolete key semantics.
    {
        let store = ResultStore::open(&dir);
        certify_incremental(&store, &program, None, None, "memsel", "SWIFT-R", &cfg());
    }
    let path = dir.join("sections.bin");
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();

    let store = ResultStore::open(&dir);
    assert!(
        store.warnings() > 0,
        "a pre-fault-model store must surface a staleness warning"
    );
    let r = certify_incremental(&store, &program, None, None, "memsel", "SWIFT-R", &cfg());
    assert_eq!(r.sections_hit, 0, "stale records must never serve hits");
    assert!(r.fresh_injections > 0, "everything recomputes");
    assert_eq!(r.coverage, reference, "recompute diverged from cold");

    // The recompute rebuilt the store at the current version: warm again.
    drop(store);
    let store = ResultStore::open(&dir);
    assert_eq!(store.warnings(), 0, "rebuilt store must be healthy");
    let warm = certify_incremental(&store, &program, None, None, "memsel", "SWIFT-R", &cfg());
    assert_eq!(warm.coverage, reference);
    assert_eq!(warm.fresh_injections, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The stored triage path composes section profiles bit-identically to
/// the monolithic triaged campaign, and a warm re-run serves every
/// section from the store.
#[test]
fn stored_triage_matches_monolithic_and_warms_up() {
    let w = AdpcmDec {
        samples: 100,
        seed: 3,
    };
    let cfg = CampaignConfig {
        runs: 60,
        seed: 42,
        threads: 2,
        ..Default::default()
    };
    let artifacts = ArtifactStore::new();
    let monolithic = run_triaged_campaign_in(&artifacts, &w, Technique::SwiftR, &cfg);

    let results = ResultStore::in_memory();
    let cold = run_triaged_campaign_stored(&artifacts, &results, &w, Technique::SwiftR, &cfg, 4);
    assert_eq!(cold.profile, monolithic.profile, "cold triage diverged");
    assert_eq!(cold.result.counts, monolithic.result.counts);
    assert_eq!(results.hits(), 0);

    let warm = run_triaged_campaign_stored(&artifacts, &results, &w, Technique::SwiftR, &cfg, 4);
    assert_eq!(warm.profile, monolithic.profile, "warm triage diverged");
    assert_eq!(results.hits(), 4, "warm triage must hit every section");
}

/// Concurrency hardening (DESIGN.md §14): two threads race overlapping
/// certify jobs against one shared on-disk store. The single append lock
/// keeps the disk tier intact, the memory tier gives read-your-writes, and
/// each thread's immediate same-store re-run is fully served from cache —
/// every result bit-identical to the monolithic reference.
#[test]
fn racing_certify_jobs_share_one_store_and_hit() {
    let technique = Technique::SwiftR;
    let program = std::sync::Arc::new(chain_program(technique, 23));
    let reference = certify_program(&program, "chain", &technique.to_string(), 2, 3);
    let dir = temp_dir("race");
    let store = ResultStore::open(&dir);

    let totals: Vec<(usize, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let store = &store;
                let program = std::sync::Arc::clone(&program);
                let reference = &reference;
                s.spawn(move || {
                    let first = certify_incremental(
                        store,
                        &program,
                        None,
                        None,
                        "chain",
                        &technique.to_string(),
                        &cfg(),
                    );
                    assert_eq!(first.coverage, *reference, "racing run diverged");
                    // Read-your-writes: this thread just persisted (or
                    // observed) every section, so the re-run is all hits.
                    let second = certify_incremental(
                        store,
                        &program,
                        None,
                        None,
                        "chain",
                        &technique.to_string(),
                        &cfg(),
                    );
                    assert_eq!(second.coverage, *reference, "warm rerun diverged");
                    assert_eq!(second.fresh_injections, 0, "rerun re-injected");
                    (second.sections_hit, second.sections_total)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (hit, total) in totals {
        assert_eq!(hit, total, "rerun must be fully served from the store");
        assert!(hit >= 1);
    }
    assert!(store.hits() >= 2, "store counters must record the reuse");

    // The racing writers left a clean, fully-warm disk tier behind.
    drop(store);
    let reopened = ResultStore::open(&dir);
    assert_eq!(reopened.warnings(), 0, "racing writers tore the file");
    let warm = certify_incremental(
        &reopened,
        &program,
        None,
        None,
        "chain",
        &technique.to_string(),
        &cfg(),
    );
    assert_eq!(warm.coverage, reference);
    assert_eq!(warm.fresh_injections, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}
