//! # sor-triage — per-fault-site vulnerability profiling and triage
//!
//! Campaign-level statistics (Figure 8's per-technique unACE / SDC / SEGV
//! percentages) say *whether* a technique works; triage says *where it
//! doesn't*. This crate aggregates provenance-annotated injections
//! ([`sor_sim::FaultRecord`]) into a [`VulnerabilityProfile`]: AVF-style
//! per-static-instruction, per-[protection-role](sor_ir::ProtectionRole)
//! and per-register outcome histograms with Wilson confidence intervals,
//! so residual SDCs can be attributed to the instruction and role they
//! slipped through.
//!
//! Two injection-efficiency strategies from the fault-injection literature
//! sit on top of the profile:
//!
//! * [`SectionalTriage`] — FastFlip-style compositional injection: the
//!   dynamic run is split into contiguous sections that are profiled
//!   independently and composed by histogram merge. Composition is exact
//!   (bit-for-bit equal to a monolithic campaign over the same faults),
//!   and when a code change invalidates only some sections, only those are
//!   re-injected.
//! * [`adaptive_profile`] — ZOFI-style adaptive statistical sampling: a
//!   stratified pilot pass locates fault sites, then refinement rounds
//!   spend the remaining budget only on sites whose SDC confidence
//!   interval still straddles the decision threshold, under a fixed-budget
//!   stop rule.
//!
//! [`cross_validate`] closes the loop against `sor-ace`: given a
//! [`CertifiedCoverage`](sor_ace::CertifiedCoverage) for the same program,
//! it checks that each well-sampled site's Wilson interval covers the
//! certified *exact* SDC rate — a calibration check on the sampler that no
//! amount of re-sampling can provide.

mod adaptive;
mod crosscheck;
mod profile;
mod section;

pub use adaptive::{adaptive_profile, AdaptiveConfig, AdaptiveResult};
pub use crosscheck::{cross_validate, CrossCheck, CrossMiss};
pub use profile::{SiteStats, VulnerabilityProfile};
pub use section::{Section, SectionalTriage};
