//! ZOFI-style adaptive statistical sampling.
//!
//! Exhaustive injection over every (dynamic slot, register, bit) point is
//! quadratic-ish in program size; uniform sampling wastes most of its
//! budget re-confirming sites that are already statistically settled. The
//! adaptive sampler spends a small stratified *pilot* pass discovering
//! which static instructions faults land on, then directs every further
//! injection at sites whose SDC confidence interval still straddles the
//! decision threshold — the sites where more data can actually change the
//! verdict — until the interval resolves or a fixed budget runs out.
//! Optionally ([`AdaptiveConfig::rank_k`]) leftover budget then races the
//! top-k ranking boundary: the weakest current member of the top-k and the
//! strongest outsider are sampled head-to-head until their intervals
//! separate, concentrating the remaining injections on exactly the
//! membership question a vulnerability report ranks sites by.
//!
//! Targeting is exact because the dynamic-slot → static-instruction map is
//! deterministic: the golden run fixes which instruction executes at each
//! slot, so re-injecting a slot (with fresh register/bit draws) always
//! lands on the same site.

use crate::profile::{SiteStats, VulnerabilityProfile};
use sor_rng::SmallRng;
use sor_sim::{FaultSpec, Replayer, Runner, INJECTABLE_REGS};
use std::collections::BTreeMap;

/// Adaptive-sampling parameters.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Pilot injections, stratified uniformly over the dynamic run.
    pub pilot: u64,
    /// Injections added per straddling site per refinement round.
    pub batch: u64,
    /// SDC-percentage decision threshold: a site is settled once its 95%
    /// Wilson interval lies entirely on one side of this value.
    pub threshold_pct: f64,
    /// Hard cap on total injections, pilot included — the stop rule.
    pub budget: u64,
    /// RNG seed.
    pub seed: u64,
    /// Registers to draw from; empty means all of
    /// [`INJECTABLE_REGS`](sor_sim::INJECTABLE_REGS). Restricting this lets
    /// the sampler share a fault space with an exhaustive grid, so their
    /// per-site rates estimate the same quantity.
    pub regs: Vec<u8>,
    /// Bit positions to draw from; empty means all 64.
    pub bits: Vec<u8>,
    /// When non-zero, leftover budget after threshold refinement is spent
    /// racing the top-`rank_k` boundary: each round samples the weakest
    /// member of the current top-k (lowest interval bound) and the
    /// strongest outsider (highest interval bound) until their intervals
    /// separate — the extra injections go exactly to the sites that decide
    /// the top-k membership, not to sites whose rank is already settled.
    pub rank_k: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            pilot: 200,
            batch: 8,
            threshold_pct: 10.0,
            budget: 1000,
            seed: 0x5EED,
            regs: Vec::new(),
            bits: Vec::new(),
            rank_k: 0,
        }
    }
}

/// What the sampler produced.
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// The accumulated profile.
    pub profile: VulnerabilityProfile,
    /// Injections actually spent (`<= budget`).
    pub injections: u64,
    /// Refinement rounds run after the pilot.
    pub rounds: u64,
    /// Sites whose SDC interval still straddled the threshold when the
    /// budget ran out (empty when every site resolved).
    pub unresolved: Vec<usize>,
}

/// Sites whose 95% SDC interval straddles the threshold strictly.
fn straddling(profile: &VulnerabilityProfile, threshold_pct: f64) -> Vec<usize> {
    profile
        .sites()
        .filter(|(_, s)| {
            let (lo, hi) = s.counts.sdc_ci95();
            lo < threshold_pct && threshold_pct < hi
        })
        .map(|(pc, _)| pc)
        .collect()
}

/// Draws a (register, bit) pair from the configured fault space. The
/// unrestricted case delegates to [`FaultSpec::sample_point`] — the
/// sampling routine shared with the campaign harness — which draws
/// register-then-bit in the same order as the restricted arms, so
/// sequences are stable whichever arms a config restricts.
fn draw_point(rng: &mut SmallRng, cfg: &AdaptiveConfig) -> (u8, u8) {
    if cfg.regs.is_empty() && cfg.bits.is_empty() {
        return FaultSpec::sample_point(rng);
    }
    let reg = if cfg.regs.is_empty() {
        *rng.choose(&INJECTABLE_REGS)
    } else {
        *rng.choose(&cfg.regs)
    };
    let bit = if cfg.bits.is_empty() {
        rng.gen_range(0, 64) as u8
    } else {
        *rng.choose(&cfg.bits)
    };
    (reg, bit)
}

fn inject_one(
    replayer: &mut Replayer<'_, '_>,
    profile: &mut VulnerabilityProfile,
    slots: &mut BTreeMap<usize, Vec<u64>>,
    fault: FaultSpec,
) {
    let (rec, res) = replayer.run_fault_record(fault);
    profile.record(&rec, res.probes.vote_repairs + res.probes.trump_recovers);
    if let Some(pc) = rec.static_inst {
        slots.entry(pc).or_default().push(fault.at_instr);
    }
}

/// Runs the adaptive sampler against `runner`'s program.
pub fn adaptive_profile(runner: &Runner, cfg: &AdaptiveConfig) -> AdaptiveResult {
    let golden_len = runner.golden().dyn_instrs.max(1);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut replayer = runner.replayer();
    let mut profile = VulnerabilityProfile::new();
    // Dynamic slots observed to land on each site; drawing from this list
    // re-targets the site with probability proportional to how often it
    // executes.
    let mut slots: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    let budget = cfg.budget.max(1);
    let mut injections = 0u64;

    // Pilot: one draw per stratum so every region of the run is observed
    // even when the pilot is much smaller than the run.
    let pilot = cfg.pilot.clamp(1, budget);
    for i in 0..pilot {
        let lo = i * golden_len / pilot;
        let hi = ((i + 1) * golden_len / pilot).max(lo + 1);
        let at = rng.gen_range(lo, hi);
        let (reg, bit) = draw_point(&mut rng, cfg);
        inject_one(
            &mut replayer,
            &mut profile,
            &mut slots,
            FaultSpec::new(at, reg, bit),
        );
        injections += 1;
    }

    // Refinement: batch extra injections onto straddling sites only.
    let mut rounds = 0u64;
    while injections < budget {
        let pending = straddling(&profile, cfg.threshold_pct);
        if pending.is_empty() {
            break;
        }
        rounds += 1;
        for pc in pending {
            // At least one injection per pending site per round, so the
            // budget always makes progress toward the stop rule.
            for _ in 0..cfg.batch.max(1) {
                if injections >= budget {
                    break;
                }
                let at = *rng.choose(&slots[&pc]);
                let (reg, bit) = draw_point(&mut rng, cfg);
                inject_one(
                    &mut replayer,
                    &mut profile,
                    &mut slots,
                    FaultSpec::new(at, reg, bit),
                );
                injections += 1;
            }
        }
    }

    // Top-k boundary racing: with the threshold question settled (or the
    // straddlers exhausted), leftover budget goes to the sites that decide
    // top-k membership. Each round ranks sites by point estimate, finds the
    // weakest member of the top-k (lowest interval lower bound) and the
    // strongest outsider (highest upper bound) and samples both; it stops
    // when their intervals separate — the membership boundary is then
    // statistically settled — or when the budget runs out.
    if cfg.rank_k > 0 {
        while injections < budget {
            let ranked = profile.top_vulnerable(usize::MAX);
            if ranked.len() <= cfg.rank_k {
                break;
            }
            let (inside, outside) = ranked.split_at(cfg.rank_k);
            let lo = |s: &SiteStats| s.counts.sdc_ci95().0;
            let hi = |s: &SiteStats| s.counts.sdc_ci95().1;
            let weakest = inside
                .iter()
                .min_by(|a, b| lo(&a.1).partial_cmp(&lo(&b.1)).expect("bounds are finite"))
                .expect("top-k is non-empty");
            let strongest = outside
                .iter()
                .max_by(|a, b| hi(&a.1).partial_cmp(&hi(&b.1)).expect("bounds are finite"))
                .expect("outsiders are non-empty");
            if lo(&weakest.1) >= hi(&strongest.1) {
                break;
            }
            rounds += 1;
            for pc in [weakest.0, strongest.0] {
                for _ in 0..cfg.batch.max(1) {
                    if injections >= budget {
                        break;
                    }
                    let at = *rng.choose(&slots[&pc]);
                    let (reg, bit) = draw_point(&mut rng, cfg);
                    inject_one(
                        &mut replayer,
                        &mut profile,
                        &mut slots,
                        FaultSpec::new(at, reg, bit),
                    );
                    injections += 1;
                }
            }
        }
    }

    let unresolved = straddling(&profile, cfg.threshold_pct);
    AdaptiveResult {
        profile,
        injections,
        rounds,
        unresolved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_ir::{ModuleBuilder, Operand, Width};
    use sor_regalloc::{lower, LowerConfig};
    use sor_sim::MachineConfig;

    fn tiny_program() -> sor_ir::Program {
        let mut mb = ModuleBuilder::new("tiny");
        let mut f = mb.function("main");
        let a = f.movi(5);
        let b = f.mul(Width::W64, a, 3i64);
        let c = f.add(Width::W64, b, a);
        f.emit(Operand::reg(c));
        f.ret(&[]);
        let id = f.finish();
        lower(&mb.finish(id), &LowerConfig::default()).unwrap()
    }

    /// The sampling-dedupe pin: the unrestricted [`draw_point`] path (now
    /// delegating to [`FaultSpec::sample_point`]) must draw the exact
    /// sequence the pre-dedupe inline code drew — register via `choose`
    /// over [`INJECTABLE_REGS`], then bit via `gen_range` — so adaptive
    /// profiles recorded before the refactor stay reproducible.
    #[test]
    fn draw_point_sequence_is_pinned_to_the_historical_draws() {
        let cfg = AdaptiveConfig::default();
        let mut rng = SmallRng::seed_from_u64(0xADA9);
        let drawn: Vec<(u8, u8)> = (0..500).map(|_| draw_point(&mut rng, &cfg)).collect();
        let mut rng = SmallRng::seed_from_u64(0xADA9);
        let expected: Vec<(u8, u8)> = (0..500)
            .map(|_| {
                let reg = *rng.choose(&INJECTABLE_REGS);
                let bit = rng.gen_range(0, 64) as u8;
                (reg, bit)
            })
            .collect();
        assert_eq!(drawn, expected);
    }

    /// Restricting either arm keeps drawing from the restricted lists.
    #[test]
    fn draw_point_respects_restrictions() {
        let cfg = AdaptiveConfig {
            regs: vec![8, 9],
            bits: vec![0, 63],
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..200 {
            let (reg, bit) = draw_point(&mut rng, &cfg);
            assert!(cfg.regs.contains(&reg));
            assert!(cfg.bits.contains(&bit));
        }
    }

    #[test]
    fn pilot_only_when_nothing_straddles_and_no_race() {
        let program = tiny_program();
        let runner = Runner::new(&program, &MachineConfig::default());
        let cfg = AdaptiveConfig {
            pilot: 40,
            budget: 400,
            // A 95% interval can never straddle 100, and rank_k = 0
            // disables the race, so the sampler stops after the pilot.
            threshold_pct: 100.0,
            ..Default::default()
        };
        let r = adaptive_profile(&runner, &cfg);
        assert_eq!(r.injections, 40);
        assert_eq!(r.rounds, 0);
        assert!(r.unresolved.is_empty());
        assert_eq!(r.profile.injections(), 40);
    }

    #[test]
    fn threshold_refinement_spends_budget_on_straddlers() {
        let program = tiny_program();
        let runner = Runner::new(&program, &MachineConfig::default());
        let cfg = AdaptiveConfig {
            pilot: 30,
            budget: 300,
            // Sits inside every site's initial interval, so refinement
            // must run past the pilot.
            threshold_pct: 20.0,
            ..Default::default()
        };
        let r = adaptive_profile(&runner, &cfg);
        assert!(r.rounds > 0, "threshold refinement never ran");
        assert!(r.injections > 30, "no injections beyond the pilot");
        assert!(r.injections <= 300, "budget exceeded: {}", r.injections);
    }

    #[test]
    fn sampler_is_deterministic_for_a_fixed_seed() {
        let program = tiny_program();
        let runner = Runner::new(&program, &MachineConfig::default());
        let cfg = AdaptiveConfig {
            pilot: 25,
            budget: 200,
            threshold_pct: 15.0,
            rank_k: 2,
            ..Default::default()
        };
        let a = adaptive_profile(&runner, &cfg);
        let b = adaptive_profile(&runner, &cfg);
        assert_eq!(a.profile, b.profile);
        assert_eq!(a.injections, b.injections);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.unresolved, b.unresolved);
    }

    #[test]
    fn rank_race_stays_within_budget() {
        let program = tiny_program();
        let runner = Runner::new(&program, &MachineConfig::default());
        let cfg = AdaptiveConfig {
            pilot: 30,
            budget: 250,
            threshold_pct: 100.0,
            rank_k: 2,
            ..Default::default()
        };
        let r = adaptive_profile(&runner, &cfg);
        assert!(r.injections <= 250, "budget exceeded: {}", r.injections);
        assert!(
            r.rounds > 0,
            "a tiny program's top-2 boundary should need racing"
        );
    }
}
