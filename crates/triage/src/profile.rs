//! Per-fault-site outcome aggregation.

use sor_ir::ProtectionRole;
use sor_sim::{FaultEffect, FaultRecord, GenFaultRecord};
use sor_stats::OutcomeCounts;
use std::collections::BTreeMap;

/// Aggregated outcomes of every fault that landed on one static
/// instruction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteStats {
    /// Protection role of the instruction, from the image's role table.
    pub role: ProtectionRole,
    /// Outcome histogram.
    pub counts: OutcomeCounts,
}

/// AVF-style vulnerability profile: outcome histograms keyed by static
/// instruction, protection role and target register.
///
/// Built by recording [`FaultRecord`]s one at a time; profiles built from
/// disjoint record sets [`merge`](VulnerabilityProfile::merge) into exactly
/// the profile a single pass over the union would build, which is what
/// makes both work-stealing campaign workers and sectional triage exact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VulnerabilityProfile {
    sites: BTreeMap<usize, SiteStats>,
    roles: BTreeMap<ProtectionRole, OutcomeCounts>,
    regs: BTreeMap<u8, OutcomeCounts>,
    unfired: OutcomeCounts,
}

impl VulnerabilityProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one annotated injection; `recoveries` is the run's observed
    /// recovery-event count (majority votes + AN recoveries).
    pub fn record(&mut self, rec: &FaultRecord, recoveries: u64) {
        match rec.static_inst {
            Some(pc) => {
                let site = self.sites.entry(pc).or_default();
                site.role = rec.role;
                site.counts.record(rec.outcome, recoveries);
                self.roles
                    .entry(rec.role)
                    .or_default()
                    .record(rec.outcome, recoveries);
                self.regs
                    .entry(rec.spec.reg)
                    .or_default()
                    .record(rec.outcome, recoveries);
            }
            // Armed past the end of the run: no site to attribute to.
            None => self.unfired.record(rec.outcome, recoveries),
        }
    }

    /// Records one generalized-model injection (see
    /// [`sor_sim::GenFaultRecord`]): site and role attribution are
    /// identical to [`record`](Self::record); the per-register histogram
    /// only accrues when the effect actually targets a register
    /// (`RegXor`), since a PC, memory or ALU upset has no victim register
    /// to attribute to.
    pub fn record_gen(&mut self, rec: &GenFaultRecord, recoveries: u64) {
        match rec.static_inst {
            Some(pc) => {
                let site = self.sites.entry(pc).or_default();
                site.role = rec.role;
                site.counts.record(rec.outcome, recoveries);
                self.roles
                    .entry(rec.role)
                    .or_default()
                    .record(rec.outcome, recoveries);
                if let FaultEffect::RegXor { reg, .. } = rec.fault.effect {
                    self.regs
                        .entry(reg)
                        .or_default()
                        .record(rec.outcome, recoveries);
                }
            }
            None => self.unfired.record(rec.outcome, recoveries),
        }
    }

    /// Folds `other` in. Commutative and associative: per-worker or
    /// per-section profiles merge to the same result in any order.
    pub fn merge(&mut self, other: &VulnerabilityProfile) {
        for (&pc, s) in &other.sites {
            let site = self.sites.entry(pc).or_default();
            site.role = s.role;
            site.counts += s.counts;
        }
        for (&role, &c) in &other.roles {
            *self.roles.entry(role).or_default() += c;
        }
        for (&reg, &c) in &other.regs {
            *self.regs.entry(reg).or_default() += c;
        }
        self.unfired += other.unfired;
    }

    /// Reconstructs a profile from its serialized parts — the inverse of
    /// walking [`sites`](Self::sites) / [`roles`](Self::roles) /
    /// [`regs`](Self::regs) / [`unfired`](Self::unfired). Built for the
    /// harness result store; a round-trip through the four accessors and
    /// back compares equal to the original.
    pub fn from_parts(
        sites: impl IntoIterator<Item = (usize, SiteStats)>,
        roles: impl IntoIterator<Item = (ProtectionRole, OutcomeCounts)>,
        regs: impl IntoIterator<Item = (u8, OutcomeCounts)>,
        unfired: OutcomeCounts,
    ) -> Self {
        VulnerabilityProfile {
            sites: sites.into_iter().collect(),
            roles: roles.into_iter().collect(),
            regs: regs.into_iter().collect(),
            unfired,
        }
    }

    /// The profiled sites in static-instruction order.
    pub fn sites(&self) -> impl Iterator<Item = (usize, &SiteStats)> {
        self.sites.iter().map(|(&pc, s)| (pc, s))
    }

    /// Per-role histograms in role order (only roles some fault landed on).
    pub fn roles(&self) -> impl Iterator<Item = (ProtectionRole, OutcomeCounts)> + '_ {
        self.roles.iter().map(|(&r, &c)| (r, c))
    }

    /// Per-target-register histograms in register order.
    pub fn regs(&self) -> impl Iterator<Item = (u8, OutcomeCounts)> + '_ {
        self.regs.iter().map(|(&r, &c)| (r, c))
    }

    /// Stats for one static instruction, if any fault landed there.
    pub fn site(&self, pc: usize) -> Option<&SiteStats> {
        self.sites.get(&pc)
    }

    /// Aggregate histogram for one protection role (empty when no fault
    /// landed on an instruction of that role).
    pub fn role_counts(&self, role: ProtectionRole) -> OutcomeCounts {
        self.roles.get(&role).copied().unwrap_or_default()
    }

    /// Aggregate histogram for one target register.
    pub fn reg_counts(&self, reg: u8) -> OutcomeCounts {
        self.regs.get(&reg).copied().unwrap_or_default()
    }

    /// Histogram of faults armed past the end of the run (always unACE).
    pub fn unfired(&self) -> OutcomeCounts {
        self.unfired
    }

    /// The whole-campaign histogram: every recorded injection, attributed
    /// or not.
    pub fn totals(&self) -> OutcomeCounts {
        let mut t = self.unfired;
        for s in self.sites.values() {
            t += s.counts;
        }
        t
    }

    /// Total recorded injections.
    pub fn injections(&self) -> u64 {
        self.totals().total()
    }

    /// The `n` most vulnerable sites: descending SDC rate (hangs folded
    /// in), ties broken by more observations, then by lower address — a
    /// total order, so the ranking is deterministic.
    pub fn top_vulnerable(&self, n: usize) -> Vec<(usize, SiteStats)> {
        let mut v: Vec<(usize, SiteStats)> = self.sites.iter().map(|(&pc, &s)| (pc, s)).collect();
        v.sort_by(|a, b| {
            b.1.counts
                .pct_sdc()
                .partial_cmp(&a.1.counts.pct_sdc())
                .expect("SDC rates are finite")
                .then(b.1.counts.total().cmp(&a.1.counts.total()))
                .then(a.0.cmp(&b.0))
        });
        v.truncate(n);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_sim::{FaultSpec, Outcome};

    fn rec(at: u64, reg: u8, pc: usize, role: ProtectionRole, outcome: Outcome) -> FaultRecord {
        FaultRecord {
            spec: FaultSpec::new(at, reg, 3),
            outcome,
            static_inst: Some(pc),
            role,
        }
    }

    #[test]
    fn record_attributes_to_site_role_and_reg() {
        let mut p = VulnerabilityProfile::new();
        p.record(&rec(0, 2, 7, ProtectionRole::Voter, Outcome::Sdc), 1);
        p.record(&rec(1, 2, 7, ProtectionRole::Voter, Outcome::UnAce), 0);
        p.record(&rec(2, 4, 9, ProtectionRole::Original, Outcome::Segv), 0);
        let site = p.site(7).unwrap();
        assert_eq!(site.role, ProtectionRole::Voter);
        assert_eq!(site.counts.total(), 2);
        assert_eq!(site.counts.sdc, 1);
        assert_eq!(p.role_counts(ProtectionRole::Voter).recoveries, 1);
        assert_eq!(p.role_counts(ProtectionRole::Original).segv, 1);
        assert_eq!(p.reg_counts(2).total(), 2);
        assert_eq!(p.reg_counts(4).total(), 1);
        assert_eq!(p.injections(), 3);
    }

    #[test]
    fn unfired_faults_do_not_gain_a_site() {
        let mut p = VulnerabilityProfile::new();
        let r = FaultRecord {
            spec: FaultSpec::new(1_000_000, 2, 3),
            outcome: Outcome::UnAce,
            static_inst: None,
            role: ProtectionRole::Original,
        };
        p.record(&r, 0);
        assert_eq!(p.sites().count(), 0);
        assert_eq!(p.unfired().unace, 1);
        assert_eq!(p.totals().total(), 1);
    }

    #[test]
    fn merge_equals_single_pass_in_any_order() {
        let records = [
            rec(0, 2, 7, ProtectionRole::Voter, Outcome::Sdc),
            rec(1, 3, 7, ProtectionRole::Voter, Outcome::UnAce),
            rec(2, 4, 9, ProtectionRole::Original, Outcome::Segv),
            rec(3, 2, 11, ProtectionRole::SpillCode, Outcome::Hang),
        ];
        let mut whole = VulnerabilityProfile::new();
        for r in &records {
            whole.record(r, 0);
        }
        let mut a = VulnerabilityProfile::new();
        let mut b = VulnerabilityProfile::new();
        a.record(&records[0], 0);
        a.record(&records[2], 0);
        b.record(&records[1], 0);
        b.record(&records[3], 0);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }

    /// A `RegXor` gen record attributes exactly like the legacy record it
    /// generalizes; a register-less effect skips only the reg histogram.
    #[test]
    fn record_gen_matches_record_for_reg_faults_and_skips_regs_otherwise() {
        use sor_sim::{FaultEffect, GenFault, GenFaultRecord};
        let mut legacy = VulnerabilityProfile::new();
        legacy.record(&rec(0, 2, 7, ProtectionRole::Voter, Outcome::Sdc), 1);
        let mut gen = VulnerabilityProfile::new();
        gen.record_gen(
            &GenFaultRecord {
                fault: GenFault::new(
                    0,
                    FaultEffect::RegXor {
                        reg: 2,
                        mask: 1 << 3,
                    },
                ),
                outcome: Outcome::Sdc,
                static_inst: Some(7),
                role: ProtectionRole::Voter,
            },
            1,
        );
        assert_eq!(gen, legacy);
        gen.record_gen(
            &GenFaultRecord {
                fault: GenFault::new(1, FaultEffect::PcXor { mask: 1 }),
                outcome: Outcome::Detected,
                static_inst: Some(9),
                role: ProtectionRole::Original,
            },
            0,
        );
        assert_eq!(gen.site(9).unwrap().counts.detected, 1);
        assert_eq!(gen.role_counts(ProtectionRole::Original).detected, 1);
        // No register to attribute the PC upset to.
        assert_eq!(gen.regs().map(|(_, c)| c.total()).sum::<u64>(), 1);
        assert_eq!(gen.totals().total(), 2);
    }

    #[test]
    fn from_parts_round_trips_a_profile() {
        let mut p = VulnerabilityProfile::new();
        p.record(&rec(0, 2, 7, ProtectionRole::Voter, Outcome::Sdc), 1);
        p.record(&rec(2, 4, 9, ProtectionRole::Original, Outcome::Segv), 0);
        p.record(
            &FaultRecord {
                spec: FaultSpec::new(1_000_000, 2, 3),
                outcome: Outcome::UnAce,
                static_inst: None,
                role: ProtectionRole::Original,
            },
            0,
        );
        let rebuilt = VulnerabilityProfile::from_parts(
            p.sites().map(|(pc, s)| (pc, *s)),
            p.roles(),
            p.regs(),
            p.unfired(),
        );
        assert_eq!(rebuilt, p);
    }

    #[test]
    fn top_vulnerable_orders_by_sdc_rate_then_observations_then_pc() {
        let mut p = VulnerabilityProfile::new();
        // pc 5: 2/2 SDC. pc 3: 1/2 SDC. pc 8: 1/1 SDC (same rate as 5,
        // fewer observations). pc 1: 0/1 SDC.
        p.record(&rec(0, 2, 5, ProtectionRole::Original, Outcome::Sdc), 0);
        p.record(&rec(1, 2, 5, ProtectionRole::Original, Outcome::Sdc), 0);
        p.record(&rec(2, 2, 3, ProtectionRole::Original, Outcome::Sdc), 0);
        p.record(&rec(3, 2, 3, ProtectionRole::Original, Outcome::UnAce), 0);
        p.record(&rec(4, 2, 8, ProtectionRole::Original, Outcome::Sdc), 0);
        p.record(&rec(5, 2, 1, ProtectionRole::Original, Outcome::UnAce), 0);
        let top: Vec<usize> = p.top_vulnerable(3).into_iter().map(|(pc, _)| pc).collect();
        assert_eq!(top, vec![5, 8, 3]);
        assert_eq!(p.top_vulnerable(10).len(), 4);
    }
}
