//! Cross-validation of sampled profiles against certified ground truth.
//!
//! A [`VulnerabilityProfile`] estimates each site's SDC rate from a random
//! sample; a [`CertifiedCoverage`] knows it exactly. Cross-validation asks
//! the only question that connects them: for every site the sampler
//! observed enough times, does the sampled 95% Wilson interval cover the
//! certified exact rate? A well-calibrated sampler covers ~95% of sites;
//! systematic misses point at a biased sampler (or a broken analysis) long
//! before either shows up in aggregate numbers.

use crate::profile::VulnerabilityProfile;
use sor_ace::CertifiedCoverage;

/// One site whose sampled interval failed to cover the exact rate.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossMiss {
    /// Static instruction address.
    pub pc: usize,
    /// The sampler's 95% Wilson interval on the SDC percentage.
    pub sampled_ci: (f64, f64),
    /// The certified exact SDC percentage over every site on this pc.
    pub exact_pct: f64,
    /// How many sampled injections landed on this pc.
    pub samples: u64,
}

/// The outcome of one cross-validation pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CrossCheck {
    /// Sites with at least `min_samples` sampled injections.
    pub checked: u64,
    /// Checked sites whose sampled interval covered the exact rate.
    pub covered: u64,
    /// The checked-but-not-covered sites, in address order.
    pub misses: Vec<CrossMiss>,
}

impl CrossCheck {
    /// Fraction of checked sites whose interval covered the exact rate
    /// (`1.0` when nothing was checked).
    pub fn coverage_rate(&self) -> f64 {
        if self.checked == 0 {
            return 1.0;
        }
        self.covered as f64 / self.checked as f64
    }
}

/// Cross-validates `profile` against `certified`: every profiled site with
/// at least `min_samples` observations is checked for interval coverage of
/// the certified exact SDC percentage.
///
/// # Panics
///
/// Panics if a profiled site is absent from the certified per-site map —
/// certification covers every site a fault can land on, so a missing pc
/// means the two reports describe different programs.
pub fn cross_validate(
    profile: &VulnerabilityProfile,
    certified: &CertifiedCoverage,
    min_samples: u64,
) -> CrossCheck {
    let mut check = CrossCheck::default();
    for (pc, stats) in profile.sites() {
        if stats.counts.total() < min_samples {
            continue;
        }
        let exact = certified
            .sites
            .get(&pc)
            .unwrap_or_else(|| panic!("pc {pc} sampled but not certified: program mismatch"));
        check.checked += 1;
        let (lo, hi) = stats.counts.sdc_ci95();
        let exact_pct = exact.pct_sdc();
        if lo <= exact_pct && exact_pct <= hi {
            check.covered += 1;
        } else {
            check.misses.push(CrossMiss {
                pc,
                sampled_ci: (lo, hi),
                exact_pct,
                samples: stats.counts.total(),
            });
        }
    }
    check
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::{adaptive_profile, AdaptiveConfig};
    use sor_ace::{CertPlan, DefUseTrace};
    use sor_core::Technique;
    use sor_ir::{ModuleBuilder, Operand, Width};
    use sor_regalloc::{lower, LowerConfig};
    use sor_sim::{FaultSpec, MachineConfig, Runner};
    use sor_stats::OutcomeCounts;

    fn program() -> sor_ir::Program {
        let mut mb = ModuleBuilder::new("xchk");
        let mut f = mb.function("main");
        let a = f.movi(21);
        let b = f.mul(Width::W64, a, 5i64);
        let c = f.add(Width::W64, b, a);
        let d = f.xor(Width::W64, c, 0x33i64);
        f.emit(Operand::reg(d));
        f.ret(&[]);
        let id = f.finish();
        lower(
            &Technique::SwiftR.apply(&mb.finish(id)),
            &LowerConfig::default(),
        )
        .unwrap()
    }

    /// Single-threaded certification, exactly `sor_harness::certify_program`
    /// minus the worker pool (which this crate cannot depend on without a
    /// cycle — sor-harness depends on sor-triage).
    fn certify(runner: &Runner, program: &sor_ir::Program) -> CertifiedCoverage {
        let trace = DefUseTrace::record(runner);
        let plan = CertPlan::build(&trace);
        let golden = runner.golden();
        let golden_recoveries = golden.probes.vote_repairs + golden.probes.trump_recovers;
        let mut replayer = runner.replayer();
        let class_results: Vec<OutcomeCounts> = plan
            .classes
            .iter()
            .map(|range| {
                let mut agg = OutcomeCounts::default();
                for bit in 0..64 {
                    let (outcome, res) =
                        replayer.run_fault(FaultSpec::new(range.hi, range.reg, bit));
                    agg.record(outcome, res.probes.vote_repairs + res.probes.trump_recovers);
                }
                agg
            })
            .collect();
        CertifiedCoverage::assemble(
            "xchk",
            "SWIFT-R",
            program,
            &trace,
            &plan,
            &class_results,
            golden_recoveries,
        )
    }

    /// The sampler's intervals must cover the certified exact rates: on
    /// this seed every well-sampled site is covered, and the result is
    /// deterministic.
    #[test]
    fn sampled_intervals_cover_certified_exact_rates() {
        let program = program();
        let runner = Runner::new(&program, &MachineConfig::default());
        let certified = certify(&runner, &program);
        let cfg = AdaptiveConfig {
            pilot: 150,
            budget: 900,
            threshold_pct: 20.0,
            seed: 0xC0FE,
            ..Default::default()
        };
        let sampled = adaptive_profile(&runner, &cfg);
        let check = cross_validate(&sampled.profile, &certified, 10);
        assert!(check.checked > 0, "nothing was well-sampled");
        assert_eq!(
            check.covered, check.checked,
            "interval misses: {:?}",
            check.misses
        );
        assert_eq!(check, cross_validate(&sampled.profile, &certified, 10));
    }

    /// An over-strict `min_samples` checks nothing and reports full
    /// coverage rather than dividing by zero.
    #[test]
    fn unchecked_profiles_report_full_coverage() {
        let program = program();
        let runner = Runner::new(&program, &MachineConfig::default());
        let certified = certify(&runner, &program);
        let sampled = adaptive_profile(
            &runner,
            &AdaptiveConfig {
                pilot: 10,
                budget: 10,
                threshold_pct: 100.0,
                ..Default::default()
            },
        );
        let check = cross_validate(&sampled.profile, &certified, u64::MAX);
        assert_eq!(check.checked, 0);
        assert_eq!(check.coverage_rate(), 1.0);
        assert!(check.misses.is_empty());
    }
}
