//! FastFlip-style sectional triage: compositional fault injection.
//!
//! A fault campaign over one program is a bag of independent injections, so
//! it can be partitioned along the dynamic-instruction axis into contiguous
//! *sections* that are profiled independently and composed by histogram
//! merge. Two properties follow:
//!
//! * **Exactness** — the composed profile is bit-for-bit the profile a
//!   monolithic campaign over the same fault list builds, because each
//!   injection's outcome depends only on its own fault point.
//! * **Incrementality** — when a change is known to affect only part of
//!   the dynamic run (a patched loop body, a different input segment),
//!   only the sections overlapping it need re-injection; the rest of the
//!   campaign is reused as-is.

use crate::profile::VulnerabilityProfile;
use sor_sim::{FaultSpec, Runner};

/// One contiguous dynamic-slot section of a campaign and its profile.
#[derive(Debug, Clone)]
pub struct Section {
    /// First dynamic slot covered (inclusive).
    pub start: u64,
    /// Last dynamic slot covered (exclusive).
    pub end: u64,
    /// The injections assigned to this section.
    pub faults: Vec<FaultSpec>,
    /// The section's profile (empty until injected).
    pub profile: VulnerabilityProfile,
}

impl Section {
    /// (Re-)profiles the section from scratch, replacing its profile.
    pub fn inject(&mut self, runner: &Runner) {
        let mut profile = VulnerabilityProfile::new();
        let mut replayer = runner.replayer();
        for &fault in &self.faults {
            let (rec, res) = replayer.run_fault_record(fault);
            profile.record(&rec, res.probes.vote_repairs + res.probes.trump_recovers);
        }
        self.profile = profile;
    }
}

/// A campaign partitioned into independently profiled sections.
#[derive(Debug, Clone)]
pub struct SectionalTriage {
    /// The sections, in dynamic-slot order.
    pub sections: Vec<Section>,
}

impl SectionalTriage {
    /// Partitions `faults` into `nsections` contiguous dynamic-slot ranges
    /// without injecting anything. The ranges evenly split `[0, horizon)`
    /// where the horizon is one past the latest fault point, so faults
    /// armed past the end of the run land in the last section.
    pub fn partition(faults: &[FaultSpec], nsections: usize) -> Self {
        let horizon = faults.iter().map(|f| f.at_instr).max().map_or(1, |m| m + 1);
        let n = nsections.max(1) as u64;
        let mut sections: Vec<Section> = (0..n)
            .map(|i| Section {
                start: i * horizon / n,
                end: (i + 1) * horizon / n,
                faults: Vec::new(),
                profile: VulnerabilityProfile::new(),
            })
            .collect();
        for &f in faults {
            let idx = sections
                .iter()
                .rposition(|s| f.at_instr >= s.start && s.start < s.end)
                .expect("the first section starts at slot 0");
            sections[idx].faults.push(f);
        }
        SectionalTriage { sections }
    }

    /// Partitions and profiles every section: the full campaign, run
    /// section by section.
    pub fn run(runner: &Runner, faults: &[FaultSpec], nsections: usize) -> Self {
        let mut triage = Self::partition(faults, nsections);
        for s in &mut triage.sections {
            s.inject(runner);
        }
        triage
    }

    /// Re-injects only the sections at `invalidated` indices (e.g. the
    /// sections a code or input change overlaps), leaving the others'
    /// profiles untouched.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn reinject(&mut self, runner: &Runner, invalidated: &[usize]) {
        for &i in invalidated {
            self.sections[i].inject(runner);
        }
    }

    /// Composes the per-section profiles into the whole-campaign profile.
    pub fn compose(&self) -> VulnerabilityProfile {
        let mut whole = VulnerabilityProfile::new();
        for s in &self.sections {
            whole.merge(&s.profile);
        }
        whole
    }

    /// Total injections across all sections.
    pub fn injections(&self) -> u64 {
        self.sections.iter().map(|s| s.faults.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(at: u64) -> FaultSpec {
        FaultSpec::new(at, 2, 5)
    }

    #[test]
    fn partition_covers_every_fault_exactly_once() {
        let faults: Vec<FaultSpec> = (0..97).map(spec).collect();
        let t = SectionalTriage::partition(&faults, 5);
        assert_eq!(t.sections.len(), 5);
        assert_eq!(t.injections(), 97);
        for s in &t.sections {
            for f in &s.faults {
                assert!(
                    s.start <= f.at_instr && f.at_instr < s.end,
                    "fault {} outside section [{}, {})",
                    f.at_instr,
                    s.start,
                    s.end
                );
            }
        }
        // Contiguous, ordered coverage of [0, horizon).
        assert_eq!(t.sections[0].start, 0);
        assert_eq!(t.sections.last().unwrap().end, 97);
        for w in t.sections.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn more_sections_than_slots_is_fine() {
        let faults = [spec(0), spec(1)];
        let t = SectionalTriage::partition(&faults, 8);
        assert_eq!(t.injections(), 2);
    }

    #[test]
    fn empty_fault_list_partitions_to_empty_sections() {
        let t = SectionalTriage::partition(&[], 3);
        assert_eq!(t.injections(), 0);
        assert!(t.compose().injections() == 0);
    }
}
