//! Micro-workload triage tests: adaptive sampling vs exhaustive ground
//! truth, and role attribution of voter faults under SWIFT-R.

use sor_ace::DefUseTrace;
use sor_core::{Technique, TransformConfig};
use sor_ir::{
    CmpOp, MemWidth, Module, ModuleBuilder, Operand, PArg, PInst, POperand, Preg, ProtectionRole,
    Width,
};
use sor_regalloc::{lower, LowerConfig};
use sor_sim::{FaultEffect, FaultSpec, GenFault, MachineConfig, Outcome, Runner};
use sor_triage::{adaptive_profile, AdaptiveConfig, VulnerabilityProfile};
use std::collections::{BTreeMap, BTreeSet};

/// A straight-line "staircase" whose live-register count ramps from 0 up
/// to 5 and back down: five values are built (each kept live until the
/// reduction), then folded pairwise into a sum that is emitted. Per-site
/// SDC rates over a fixed 8-register/bit grid are therefore tiered in
/// steps of one live register (12.5%), with a single peak and symmetric
/// pairs below it — so the top-5 most-vulnerable sites (the peak plus two
/// pairs) are separated from rank 6 by a full step, a well-posed ranking
/// for the adaptive-vs-exhaustive comparison, unlike a homogeneous loop
/// body where every site ties.
fn staircase_module() -> Module {
    let mut mb = ModuleBuilder::new("stair");
    let mut f = mb.function("main");
    let b = f.movi(21);
    let c = f.add(Width::W64, b, 11i64);
    let d = f.add(Width::W64, c, 5i64);
    let e = f.mul(Width::W64, d, 3i64);
    let ff = f.add(Width::W64, e, 9i64);
    let t1 = f.add(Width::W64, b, c);
    let t2 = f.add(Width::W64, t1, d);
    let t3 = f.add(Width::W64, t2, e);
    let t4 = f.add(Width::W64, t3, ff);
    f.emit(Operand::reg(t4));
    f.ret(&[]);
    let id = f.finish();
    mb.finish(id)
}

/// A small loop with a clear vulnerability structure: a multiply-accumulate
/// over 12 iterations whose accumulator, index and base address all live in
/// registers the whole time, then one store through the base.
fn micro_module() -> Module {
    let mut mb = ModuleBuilder::new("micro");
    let g = mb.alloc_global("g", 16);
    let mut f = mb.function("main");
    let base = f.movi(g as i64);
    let acc = f.movi(1);
    let i = f.movi(0);
    let header = f.block();
    let body = f.block();
    let exit = f.block();
    f.jump(header);
    f.switch_to(header);
    let c = f.cmp(CmpOp::LtU, Width::W64, i, 12i64);
    f.branch(c, body, exit);
    f.switch_to(body);
    let scaled = f.mul(Width::W64, acc, 3i64);
    let bumped = f.add(Width::W64, scaled, i);
    f.mov_to(acc, bumped);
    let next = f.add(Width::W64, i, 1i64);
    f.mov_to(i, next);
    f.jump(header);
    f.switch_to(exit);
    f.store(MemWidth::B8, base, 0, acc);
    f.emit(Operand::reg(acc));
    f.ret(&[]);
    let id = f.finish();
    mb.finish(id)
}

/// Exhaustive ground truth over a fixed (slot x register x bit) grid.
fn exhaustive(runner: &Runner, regs: &[u8], bits: &[u8]) -> (VulnerabilityProfile, u64) {
    let golden_len = runner.golden().dyn_instrs;
    let mut profile = VulnerabilityProfile::new();
    let mut replayer = runner.replayer();
    let mut injections = 0u64;
    for at in 0..golden_len {
        for &reg in regs {
            for &bit in bits {
                let (rec, res) = replayer.run_fault_record(FaultSpec::new(at, reg, bit));
                profile.record(&rec, res.probes.vote_repairs + res.probes.trump_recovers);
                injections += 1;
            }
        }
    }
    (profile, injections)
}

/// The adaptive-sampling acceptance pin: on the staircase micro-workload,
/// the sampler identifies the same top-5 most-vulnerable static
/// instructions as exhaustive injection while spending at most a quarter
/// of the exhaustive budget.
#[test]
fn adaptive_finds_exhaustive_top5_within_quarter_budget() {
    let module = staircase_module();
    let program = lower(&module, &LowerConfig::default()).unwrap();
    let runner = Runner::new(&program, &MachineConfig::default());

    let regs: Vec<u8> = vec![0, 2, 3, 4, 5, 6, 7, 8];
    let bits: Vec<u8> = (0..64).collect();
    let (truth, exhaustive_budget) = exhaustive(&runner, &regs, &bits);
    let mut expected: Vec<usize> = truth
        .top_vulnerable(5)
        .into_iter()
        .map(|(pc, _)| pc)
        .collect();

    // The sampler draws from the same (register, bit) space as the
    // exhaustive grid, so both estimate the same per-site SDC rate. The
    // question under test is a ranking, so the whole post-pilot budget
    // goes to the rank-5 membership race (threshold 100 can never
    // straddle a 95% interval, disabling threshold refinement): the race
    // spends every leftover injection on exactly the sites that decide
    // top-5 membership.
    let budget = exhaustive_budget / 4;
    let result = adaptive_profile(
        &runner,
        &AdaptiveConfig {
            pilot: budget / 6,
            batch: 12,
            threshold_pct: 100.0,
            budget,
            seed: 0xBEEF,
            regs: regs.clone(),
            bits: bits.clone(),
            rank_k: 5,
        },
    );
    assert!(
        result.injections <= exhaustive_budget / 4,
        "adaptive spent {} of {} allowed",
        result.injections,
        exhaustive_budget / 4
    );
    let mut found: Vec<usize> = result
        .profile
        .top_vulnerable(5)
        .into_iter()
        .map(|(pc, _)| pc)
        .collect();
    expected.sort_unstable();
    found.sort_unstable();
    assert_eq!(
        found,
        expected,
        "adaptive top-5 diverged from exhaustive ground truth\n{:?}\nvs\n{:?}",
        result.profile.top_vulnerable(5),
        truth.top_vulnerable(5)
    );
}

/// Whether `inst` reads integer register `reg` as a source operand
/// (including store/load address bases and call/return argument registers).
fn reads_int_reg(inst: &PInst, reg: u8) -> bool {
    let r = |p: Preg| p.is_int() && p.index() == reg;
    let o = |p: &POperand| matches!(p, POperand::Reg(q) if r(*q));
    let a = |p: &PArg| matches!(p, PArg::Reg(q) if r(*q));
    match inst {
        PInst::Alu { a: x, b: y, .. } | PInst::Cmp { a: x, b: y, .. } => o(x) || o(y),
        PInst::Select { cond, t, f, .. } => r(*cond) || o(t) || o(f),
        PInst::Mov { src, .. } => o(src),
        PInst::Load { base, .. } | PInst::FLoad { base, .. } => r(*base),
        PInst::Store { base, src, .. } => r(*base) || o(src),
        PInst::FStore { base, .. } => r(*base),
        PInst::Branch { cond, .. } => r(*cond),
        PInst::CvtIF { src, .. } => r(*src),
        PInst::CallInt { args, .. } | PInst::CallExt { args, .. } => args.iter().any(a),
        PInst::Ret { vals, .. } => vals.iter().any(a),
        _ => false,
    }
}

/// Role-attribution soundness under SWIFT-R: exhaustive injection over a
/// register/bit grid. A fault landing on a voter-tagged instruction is
/// either recovered/detected, or it is a *vote-to-use window* escape: the
/// flip corrupted a register whose vote had already compared but whose
/// protected use had not yet executed — in which case the flipped register
/// must be a source operand of the next original-role instruction. No
/// voter-site fault escapes silently by any other mechanism, and escapes
/// are a small minority of voter-site faults.
#[test]
fn swiftr_voter_faults_recover_or_escape_through_vote_to_use_window() {
    let module = micro_module();
    let protected = Technique::SwiftR.apply_with(&module, &TransformConfig::default());
    let program = lower(&protected, &LowerConfig::default()).unwrap();
    assert!(
        program.roles.contains(&ProtectionRole::Voter),
        "SWIFT-R image must contain voter-tagged instructions"
    );
    let runner = Runner::new(&program, &MachineConfig::default());
    let golden_len = runner.golden().dyn_instrs;
    let mut replayer = runner.replayer();
    let mut voter_hits = 0u64;
    let mut escapes = 0u64;
    let mut repairs_seen = 0u64;
    for at in 0..golden_len {
        for reg in [2u8, 3, 4, 5, 6, 7] {
            for bit in [0u8, 31, 62] {
                let (rec, res) = replayer.run_fault_record(FaultSpec::new(at, reg, bit));
                if rec.role != ProtectionRole::Voter {
                    continue;
                }
                voter_hits += 1;
                repairs_seen += res.probes.vote_repairs;
                if !matches!(rec.outcome, Outcome::Sdc | Outcome::Hang) {
                    continue;
                }
                escapes += 1;
                let pc = rec.static_inst.expect("voter record must carry its pc");
                let next_use = (pc..program.len())
                    .find(|&p| program.roles[p] == ProtectionRole::Original)
                    .expect("voter sequence must precede a protected use");
                assert!(
                    reads_int_reg(&program.insts[next_use], reg),
                    "voter-site fault {} produced {:?} but r{reg} is not consumed \
                     by the next protected use `{}` at pc {next_use} — a silent \
                     escape outside the vote-to-use window",
                    rec.spec,
                    rec.outcome,
                    program.insts[next_use]
                );
            }
        }
    }
    assert!(
        voter_hits > 0,
        "no fault ever landed on a voter instruction"
    );
    assert!(repairs_seen > 0, "voter faults must exercise vote repair");
    assert!(
        escapes * 5 <= voter_hits,
        "window escapes ({escapes}) should be a small minority of \
         voter-site faults ({voter_hits})"
    );
}

/// Maximal-block partition of a lowered image: every Jump/Branch target,
/// every fall-through after a terminator, and every function `Enter`
/// starts a block.
fn block_starts(program: &sor_ir::Program) -> BTreeSet<usize> {
    let mut starts = BTreeSet::new();
    starts.insert(0);
    for (pc, inst) in program.insts.iter().enumerate() {
        match inst {
            PInst::Jump(t) => {
                starts.insert(*t);
                starts.insert(pc + 1);
            }
            PInst::Branch { t, f, .. } => {
                starts.insert(*t);
                starts.insert(*f);
                starts.insert(pc + 1);
            }
            PInst::Ret { .. } | PInst::Trap(_) => {
                starts.insert(pc + 1);
            }
            PInst::Enter { .. } => {
                starts.insert(pc);
            }
            _ => {}
        }
    }
    starts.retain(|&s| s < program.len());
    starts
}

/// The detection guarantee CFCSS is built on, pinned exhaustively — the
/// control-flow analogue of the SWIFT-R vote-to-use escape-window test
/// above: at every dynamic control-transfer slot, redirecting the pc to
/// *any* signature-checked block head other than the transfer's own legal
/// successors and the current block's own head is caught by the `G == s_j`
/// check, deterministically.
///
/// The two exclusions are exactly CFCSS's documented blind spots for this
/// fault shape: landing on a legal successor replays the intended edge
/// (the run-time signature already matches), and landing back on the
/// current block's own head re-passes the check that block already
/// satisfied (re-executing its body — detectable only by data-flow
/// schemes, not signatures). Everything else must trap, because the
/// signature register G holds the current block's (injective) signature
/// and every checked head compares against its own.
#[test]
fn cfcss_detects_every_wrong_successor_pc_corruption() {
    let module = micro_module();
    let protected = Technique::Cfcss.apply_with(&module, &TransformConfig::default());
    let program = lower(&protected, &LowerConfig::default()).unwrap();
    let runner = Runner::new(&program, &MachineConfig::default());
    let trace = DefUseTrace::record(&runner);

    let starts = block_starts(&program);
    // Checked heads are block starts holding a CFCSS signature check: a
    // voter-tagged `Cmp::Ne` against G followed by the det/fall branch.
    // The branch's false edge is the fall block continuing the *same*
    // original block, so it inherits the head's signature identity.
    let mut heads: Vec<usize> = Vec::new();
    let mut fall_of: BTreeMap<usize, usize> = BTreeMap::new();
    for &s in &starts {
        let is_check = matches!(program.insts[s], PInst::Cmp { op: CmpOp::Ne, .. })
            && program.roles[s] == ProtectionRole::Voter;
        if is_check {
            if let PInst::Branch { f, .. } = program.insts[s + 1] {
                heads.push(s);
                fall_of.insert(f, s);
            }
        }
    }
    assert!(
        heads.len() >= 3,
        "micro loop (header/body/exit) must yield at least 3 checked heads, got {heads:?}"
    );

    // Which checked head owns the block a given pc sits in, if any: the
    // check region itself, or a fall region continuing it. Entry, edge and
    // trap blocks have no head — no same-block exclusion applies there.
    let owner_head = |pc: usize| -> Option<usize> {
        let region = *starts.range(..=pc).next_back().expect("pc 0 is a start");
        if heads.contains(&region) {
            Some(region)
        } else {
            fall_of.get(&region).copied()
        }
    };

    let mut replayer = runner.replayer();
    let mut wrong_landings = 0u64;
    let mut same_block_skips = 0u64;
    for slot in 0..trace.len() {
        let pc = trace.check_pc(slot);
        let legal: Vec<usize> = match program.insts[pc] {
            PInst::Jump(t) => vec![t],
            PInst::Branch { t, f, .. } => vec![t, f],
            _ => continue,
        };
        let own = owner_head(pc);
        for &h in &heads {
            if legal.contains(&h) {
                continue;
            }
            if own == Some(h) {
                same_block_skips += 1;
                continue;
            }
            let fault = GenFault::new(
                slot,
                FaultEffect::PcXor {
                    mask: (pc ^ h) as u64,
                },
            );
            let (rec, _) = replayer.run_fault_record_gen(fault);
            wrong_landings += 1;
            assert_eq!(
                rec.outcome,
                Outcome::Detected,
                "pc corruption at dyn slot {slot} (pc {pc}, `{}`) redirected to \
                 checked head {h} (`{}`) escaped the signature check with {:?}",
                program.insts[pc],
                program.insts[h],
                rec.outcome
            );
        }
    }
    assert!(
        wrong_landings > 50,
        "exhaustive grid collapsed: only {wrong_landings} wrong-successor injections ran"
    );
    assert!(
        same_block_skips > 0,
        "the same-block blind spot never occurred — the exclusion logic is dead code"
    );
}
